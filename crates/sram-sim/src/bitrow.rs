//! A fixed-width row of SRAM bits with the operations the bitline
//! periphery can perform.
//!
//! Column `c` of the array maps to bit `c` of the row. Within a tile of
//! width `w`, the word of tile `t` occupies columns `t·w .. (t+1)·w` with
//! its least-significant bit at column `t·w`. A "left" shift moves every
//! bit to the next higher column (multiply by two within a tile); "right"
//! moves it down. Global shifts let bits cross tile boundaries (how BP-NTT
//! merges spilled coefficients); masked shifts inject zero at configured
//! tile boundaries (needed for two's-complement arithmetic whose carry-out
//! is data-dependent — design decision D2 in `DESIGN.md`).

use std::fmt;

/// Storage words per chunk: every row's word vector is padded with zero
/// words up to a multiple of this, so the word-engine's hot loops (see
/// [`crate::wordkern`]) always see whole 256-bit blocks — one AVX2 vector,
/// or four iterations of a fully unrollable scalar loop — with no remainder
/// handling. Bits at and above `cols` are an invariant zero (`clear_tail`).
pub(crate) const WORD_CHUNK: usize = 4;

/// Number of storage words (padded) backing a row of `cols` bits.
#[inline]
#[must_use]
pub(crate) fn padded_words(cols: usize) -> usize {
    cols.div_ceil(64).next_multiple_of(WORD_CHUNK)
}

/// One row of bits, indexed by column.
///
/// # Example
///
/// ```
/// use bpntt_sram::BitRow;
///
/// let mut r = BitRow::zero(256);
/// r.set_tile_word(3, 32, 0xDEAD_BEEF);
/// assert_eq!(r.tile_word(3, 32), 0xDEAD_BEEF);
/// assert_eq!(r.tile_word(2, 32), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    words: Vec<u64>,
    cols: usize,
}

impl BitRow {
    /// An all-zero row of `cols` bits.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    #[must_use]
    pub fn zero(cols: usize) -> Self {
        assert!(cols > 0, "a row needs at least one column");
        BitRow {
            words: vec![0; padded_words(cols)],
            cols,
        }
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads bit at column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    #[inline]
    #[must_use]
    pub fn bit(&self, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range");
        (self.words[c / 64] >> (c % 64)) & 1 == 1
    }

    /// Sets bit at column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    #[inline]
    pub fn set_bit(&mut self, c: usize, v: bool) {
        assert!(c < self.cols, "column {c} out of range");
        let w = &mut self.words[c / 64];
        if v {
            *w |= 1 << (c % 64);
        } else {
            *w &= !(1 << (c % 64));
        }
    }

    /// Extracts the `width`-bit word of tile `tile` (LSB at column
    /// `tile·width`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or > 64, or the tile exceeds the row.
    #[must_use]
    pub fn tile_word(&self, tile: usize, width: usize) -> u64 {
        assert!(
            width > 0 && width <= 64,
            "tile width {width} outside 1..=64"
        );
        let base = tile * width;
        assert!(base + width <= self.cols, "tile {tile} out of range");
        let mut v = 0u64;
        for j in 0..width {
            if self.bit(base + j) {
                v |= 1 << j;
            }
        }
        v
    }

    /// Writes the `width`-bit word of tile `tile`.
    ///
    /// # Panics
    ///
    /// Panics on geometry violations or if `value` does not fit `width`.
    pub fn set_tile_word(&mut self, tile: usize, width: usize, value: u64) {
        assert!(
            width > 0 && width <= 64,
            "tile width {width} outside 1..=64"
        );
        assert!(
            width == 64 || value < (1u64 << width),
            "value does not fit tile width"
        );
        let base = tile * width;
        assert!(base + width <= self.cols, "tile {tile} out of range");
        for j in 0..width {
            self.set_bit(base + j, (value >> j) & 1 == 1);
        }
    }

    /// Bitwise AND of two rows.
    #[must_use]
    pub fn and(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR of two rows.
    #[must_use]
    pub fn or(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR of two rows.
    #[must_use]
    pub fn xor(&self, other: &BitRow) -> BitRow {
        self.zip(other, |a, b| a ^ b)
    }

    /// Bitwise NOR of two rows (the native 6T dual-activation result on the
    /// complementary bitline).
    #[must_use]
    pub fn nor(&self, other: &BitRow) -> BitRow {
        let mut r = self.zip(other, |a, b| !(a | b));
        r.clear_tail();
        r
    }

    /// Bitwise complement (sensed on the complementary bitline of a single
    /// activated row).
    #[must_use]
    pub fn not(&self) -> BitRow {
        let mut r = BitRow {
            words: self.words.iter().map(|w| !w).collect(),
            cols: self.cols,
        };
        r.clear_tail();
        r
    }

    fn zip(&self, other: &BitRow, f: impl Fn(u64, u64) -> u64) -> BitRow {
        assert_eq!(self.cols, other.cols, "rows must have equal width");
        BitRow {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            cols: self.cols,
        }
    }

    /// Zeroes every bit at column `cols` and above: the partial bits of the
    /// last in-use word plus all chunk-padding words.
    fn clear_tail(&mut self) {
        let used = self.cols.div_ceil(64);
        let rem = self.cols % 64;
        if rem != 0 {
            self.words[used - 1] &= (1u64 << rem) - 1;
        }
        for w in &mut self.words[used..] {
            *w = 0;
        }
    }

    /// Global 1-bit shift toward higher columns; the top bit falls off,
    /// zero enters at column 0. Bits cross tile boundaries.
    #[must_use]
    pub fn shl1_global(&self) -> BitRow {
        let mut words = vec![0u64; self.words.len()];
        let mut carry = 0u64;
        for (i, &w) in self.words.iter().enumerate() {
            words[i] = (w << 1) | carry;
            carry = w >> 63;
        }
        let mut r = BitRow {
            words,
            cols: self.cols,
        };
        r.clear_tail();
        r
    }

    /// Global 1-bit shift toward lower columns; bit 0 falls off, zero
    /// enters at the top column. Bits cross tile boundaries.
    #[must_use]
    pub fn shr1_global(&self) -> BitRow {
        let mut words = vec![0u64; self.words.len()];
        let mut carry = 0u64;
        for (i, &w) in self.words.iter().enumerate().rev() {
            words[i] = (w >> 1) | (carry << 63);
            carry = w & 1;
        }
        BitRow {
            words,
            cols: self.cols,
        }
    }

    /// 1-bit left shift with zero injected at every tile boundary: the bit
    /// leaving tile `t`'s MSB is discarded instead of entering tile `t+1`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_width` does not divide the column count.
    #[must_use]
    pub fn shl1_masked(&self, tile_width: usize) -> BitRow {
        assert_eq!(self.cols % tile_width, 0, "tile width must divide the row");
        let mut r = self.shl1_global();
        for base in (0..self.cols).step_by(tile_width) {
            r.set_bit(base, false); // the bit that crossed in from below
        }
        r
    }

    /// 1-bit right shift with zero injected at every tile boundary: the bit
    /// leaving tile `t`'s LSB is discarded instead of entering tile `t−1`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_width` does not divide the column count.
    #[must_use]
    pub fn shr1_masked(&self, tile_width: usize) -> BitRow {
        assert_eq!(self.cols % tile_width, 0, "tile width must divide the row");
        let mut r = self.shr1_global();
        for base in (0..self.cols).step_by(tile_width) {
            r.set_bit(base + tile_width - 1, false);
        }
        r
    }

    // ---- allocation-free in-place operations ------------------------------
    //
    // The controller's hot path (`exec`) routes every instruction through
    // two preallocated scratch rows; these `assign_*` methods compute a
    // peripheral operation directly into `self`'s storage words without
    // touching the allocator. `self` must have the same width as the
    // sources (debug-asserted like the allocating variants assert).

    /// Overwrites `self` with a copy of `src` (same width required).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn copy_from(&mut self, src: &BitRow) {
        assert_eq!(self.cols, src.cols, "rows must have equal width");
        self.words.copy_from_slice(&src.words);
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self ← a OP b` without allocating, where `OP` is supplied as a
    /// word-level function (tail bits are the caller's contract: all four
    /// sense functions below maintain a clear tail).
    fn assign_zip(&mut self, a: &BitRow, b: &BitRow, f: impl Fn(u64, u64) -> u64) {
        assert_eq!(a.cols, b.cols, "rows must have equal width");
        assert_eq!(self.cols, a.cols, "rows must have equal width");
        for ((d, &x), &y) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *d = f(x, y);
        }
    }

    /// `self ← a AND b` in place.
    pub fn assign_and(&mut self, a: &BitRow, b: &BitRow) {
        self.assign_zip(a, b, |x, y| x & y);
    }

    /// `self ← a OR b` in place.
    pub fn assign_or(&mut self, a: &BitRow, b: &BitRow) {
        self.assign_zip(a, b, |x, y| x | y);
    }

    /// `self ← a XOR b` in place.
    pub fn assign_xor(&mut self, a: &BitRow, b: &BitRow) {
        self.assign_zip(a, b, |x, y| x ^ y);
    }

    /// `self ← a NOR b` in place.
    pub fn assign_nor(&mut self, a: &BitRow, b: &BitRow) {
        self.assign_zip(a, b, |x, y| !(x | y));
        self.clear_tail();
    }

    /// `self ← NOT a` in place.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn assign_not(&mut self, a: &BitRow) {
        assert_eq!(self.cols, a.cols, "rows must have equal width");
        for (d, &x) in self.words.iter_mut().zip(&a.words) {
            *d = !x;
        }
        self.clear_tail();
    }

    /// Global 1-bit left shift of `self` in place (see [`Self::shl1_global`]).
    pub fn shl1_global_in_place(&mut self) {
        let mut carry = 0u64;
        for w in &mut self.words {
            let next = *w >> 63;
            *w = (*w << 1) | carry;
            carry = next;
        }
        self.clear_tail();
    }

    /// Global 1-bit right shift of `self` in place (see [`Self::shr1_global`]).
    pub fn shr1_global_in_place(&mut self) {
        let mut carry = 0u64;
        for w in self.words.iter_mut().rev() {
            let next = *w & 1;
            *w = (*w >> 1) | (carry << 63);
            carry = next;
        }
    }

    /// Tile-masked 1-bit left shift of `self` in place (see
    /// [`Self::shl1_masked`]).
    ///
    /// # Panics
    ///
    /// Panics if `tile_width` does not divide the column count.
    pub fn shl1_masked_in_place(&mut self, tile_width: usize) {
        assert_eq!(self.cols % tile_width, 0, "tile width must divide the row");
        self.shl1_global_in_place();
        for base in (0..self.cols).step_by(tile_width) {
            self.set_bit(base, false);
        }
    }

    /// Tile-masked 1-bit right shift of `self` in place (see
    /// [`Self::shr1_masked`]).
    ///
    /// # Panics
    ///
    /// Panics if `tile_width` does not divide the column count.
    pub fn shr1_masked_in_place(&mut self, tile_width: usize) {
        assert_eq!(self.cols % tile_width, 0, "tile width must divide the row");
        self.shr1_global_in_place();
        for base in (0..self.cols).step_by(tile_width) {
            self.set_bit(base + tile_width - 1, false);
        }
    }

    /// Sets every bit in the column range `start..end` to `value`
    /// (word-masked; used to maintain per-tile predicate column masks).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row.
    pub fn fill_range(&mut self, start: usize, end: usize, value: bool) {
        assert!(
            start <= end && end <= self.cols,
            "column range out of bounds"
        );
        if start == end {
            return;
        }
        let first = start / 64;
        let last = (end - 1) / 64;
        for w in first..=last {
            let lo = if w == first { start % 64 } else { 0 };
            let hi = if w == last { (end - 1) % 64 } else { 63 };
            let mask = (((1u128 << (hi - lo + 1)) - 1) as u64) << lo;
            if value {
                self.words[w] |= mask;
            } else {
                self.words[w] &= !mask;
            }
        }
    }

    /// `self &= mask` word-wise.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and_assign(&mut self, mask: &BitRow) {
        assert_eq!(self.cols, mask.cols, "rows must have equal width");
        for (d, &m) in self.words.iter_mut().zip(&mask.words) {
            *d &= m;
        }
    }

    /// The underlying storage words (bit `c` lives at word `c/64`, bit
    /// `c%64`). The slice length is padded to a multiple of
    /// [`WORD_CHUNK`] and every bit at column `cols` and above is zero —
    /// the two invariants the word-engine kernels rely on.
    #[inline]
    #[must_use]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable storage words. Callers must keep the tail bits clear.
    #[inline]
    #[must_use]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Copies the column range `start..end` from `src` into `self`,
    /// leaving every other column untouched (the word-masked merge behind
    /// per-tile write gating).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the range exceeds the row.
    pub fn copy_bits_from(&mut self, src: &BitRow, start: usize, end: usize) {
        assert_eq!(self.cols, src.cols, "rows must have equal width");
        assert!(
            start <= end && end <= self.cols,
            "column range out of bounds"
        );
        if start == end {
            return;
        }
        let first = start / 64;
        let last = (end - 1) / 64;
        for w in first..=last {
            let lo = if w == first { start % 64 } else { 0 };
            let hi = if w == last { (end - 1) % 64 } else { 63 };
            let mask = (((1u128 << (hi - lo + 1)) - 1) as u64) << lo;
            self.words[w] = (self.words[w] & !mask) | (src.words[w] & mask);
        }
    }

    /// True when every bit is zero (sensed in hardware by a wired-OR across
    /// the sense amplifiers; used by the carry-resolution loops).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow[{}; ", self.cols)?;
        // Highest column first, like a binary literal.
        for c in (0..self.cols).rev() {
            write!(f, "{}", u8::from(self.bit(c)))?;
            if c % 8 == 0 && c != 0 {
                write!(f, "_")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_word_roundtrip() {
        let mut r = BitRow::zero(256);
        for t in 0..8 {
            r.set_tile_word(t, 32, 0x0123_4567 * (t as u64 + 1));
        }
        for t in 0..8 {
            assert_eq!(r.tile_word(t, 32), 0x0123_4567 * (t as u64 + 1));
        }
    }

    #[test]
    fn logic_ops_match_u64_semantics() {
        let mut a = BitRow::zero(96);
        let mut b = BitRow::zero(96);
        a.set_tile_word(0, 48, 0xF0F0_1234_ABCD);
        b.set_tile_word(0, 48, 0x0FF0_5678_00FF);
        assert_eq!(
            a.and(&b).tile_word(0, 48),
            0xF0F0_1234_ABCD & 0x0FF0_5678_00FF
        );
        assert_eq!(
            a.or(&b).tile_word(0, 48),
            0xF0F0_1234_ABCD | 0x0FF0_5678_00FF
        );
        assert_eq!(
            a.xor(&b).tile_word(0, 48),
            0xF0F0_1234_ABCD ^ 0x0FF0_5678_00FF
        );
        let mask = (1u64 << 48) - 1;
        assert_eq!(
            a.nor(&b).tile_word(0, 48),
            !(0xF0F0_1234_ABCDu64 | 0x0FF0_5678_00FF) & mask
        );
        assert_eq!(a.not().tile_word(0, 48), !0xF0F0_1234_ABCDu64 & mask);
    }

    #[test]
    fn global_shifts_cross_tile_boundaries() {
        let mut r = BitRow::zero(64);
        // Two 32-bit tiles; set tile 0's MSB.
        r.set_bit(31, true);
        let l = r.shl1_global();
        assert!(l.bit(32), "bit must cross into tile 1's LSB");
        let back = l.shr1_global();
        assert!(back.bit(31));
        assert_eq!(back, r);
    }

    #[test]
    fn masked_shifts_block_tile_boundaries() {
        let mut r = BitRow::zero(64);
        r.set_bit(31, true); // tile 0 MSB
        r.set_bit(32, true); // tile 1 LSB
        let l = r.shl1_masked(32);
        assert!(!l.bit(32), "crossing bit must be discarded");
        assert!(l.bit(33), "in-tile shift still happens");
        let s = r.shr1_masked(32);
        assert!(!s.bit(31), "crossing bit must be discarded");
        assert!(s.bit(30));
    }

    #[test]
    fn shifts_at_word_boundaries() {
        // 128 columns = two u64 words; exercise the inter-word carry.
        let mut r = BitRow::zero(128);
        r.set_bit(63, true);
        assert!(r.shl1_global().bit(64));
        let mut r = BitRow::zero(128);
        r.set_bit(64, true);
        assert!(r.shr1_global().bit(63));
    }

    #[test]
    fn top_bit_falls_off_and_tail_stays_clear() {
        let mut r = BitRow::zero(100);
        r.set_bit(99, true);
        let l = r.shl1_global();
        assert!(l.is_zero(), "bit above column 99 must not linger");
        let n = r.not();
        assert_eq!(n.count_ones(), 99);
    }

    #[test]
    fn odd_tile_widths() {
        // 3 tiles of 14 bits in a 42-column row (the paper's 14-bit mode).
        let mut r = BitRow::zero(42);
        r.set_tile_word(0, 14, 0x3FFF);
        r.set_tile_word(2, 14, 0x2AAA);
        assert_eq!(r.tile_word(0, 14), 0x3FFF);
        assert_eq!(r.tile_word(1, 14), 0);
        assert_eq!(r.tile_word(2, 14), 0x2AAA);
        let l = r.shl1_masked(14);
        assert_eq!(l.tile_word(0, 14), 0x3FFE);
        assert_eq!(l.tile_word(1, 14), 0);
        assert_eq!(l.tile_word(2, 14), (0x2AAA << 1) & 0x3FFF);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_bounds_checked() {
        let r = BitRow::zero(10);
        let _ = r.bit(10);
    }

    #[test]
    fn debug_format_is_nonempty() {
        let r = BitRow::zero(8);
        assert!(format!("{r:?}").contains("BitRow[8"));
    }

    fn random_row(cols: usize, seed: u64) -> BitRow {
        let mut r = BitRow::zero(cols);
        let mut x = seed | 1;
        for c in 0..cols {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            r.set_bit(c, x & 1 == 1);
        }
        r
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        for cols in [42, 64, 100, 256] {
            let a = random_row(cols, 11);
            let b = random_row(cols, 22);
            let mut s = BitRow::zero(cols);
            s.assign_and(&a, &b);
            assert_eq!(s, a.and(&b));
            s.assign_or(&a, &b);
            assert_eq!(s, a.or(&b));
            s.assign_xor(&a, &b);
            assert_eq!(s, a.xor(&b));
            s.assign_nor(&a, &b);
            assert_eq!(s, a.nor(&b));
            s.assign_not(&a);
            assert_eq!(s, a.not());
            s.copy_from(&a);
            assert_eq!(s, a);
            s.clear();
            assert!(s.is_zero());
        }
    }

    #[test]
    fn in_place_shifts_match_allocating_shifts() {
        for cols in [42, 64, 100, 256] {
            let a = random_row(cols, 33);
            let mut s = a.clone();
            s.shl1_global_in_place();
            assert_eq!(s, a.shl1_global(), "cols={cols}");
            let mut s = a.clone();
            s.shr1_global_in_place();
            assert_eq!(s, a.shr1_global(), "cols={cols}");
        }
        // Masked variants on widths that divide the row.
        for (cols, w) in [(42, 14), (64, 16), (256, 32)] {
            let a = random_row(cols, 44);
            let mut s = a.clone();
            s.shl1_masked_in_place(w);
            assert_eq!(s, a.shl1_masked(w));
            let mut s = a.clone();
            s.shr1_masked_in_place(w);
            assert_eq!(s, a.shr1_masked(w));
        }
    }

    #[test]
    fn storage_is_chunk_padded_and_tail_stays_clear() {
        for cols in [1, 42, 64, 100, 256, 300] {
            let r = BitRow::zero(cols);
            assert_eq!(r.words().len() % WORD_CHUNK, 0, "cols={cols}");
            assert_eq!(r.words().len(), padded_words(cols));
            // Every operation that could smear into the padding must keep
            // it clear: complement is the worst case.
            let n = random_row(cols, 77).not();
            let used = cols.div_ceil(64);
            for (i, &w) in n.words().iter().enumerate().skip(used) {
                assert_eq!(w, 0, "padding word {i} dirty at cols={cols}");
            }
            let mut s = BitRow::zero(cols);
            s.assign_not(&random_row(cols, 78));
            for &w in s.words().iter().skip(used) {
                assert_eq!(w, 0);
            }
            let mut s = random_row(cols, 79);
            s.shl1_global_in_place();
            for &w in s.words().iter().skip(used) {
                assert_eq!(w, 0);
            }
        }
    }

    #[test]
    fn copy_bits_from_merges_ranges() {
        let src = random_row(200, 55);
        for (start, end) in [
            (0, 200),
            (0, 0),
            (13, 14),
            (60, 70),
            (64, 128),
            (130, 199),
            (0, 64),
        ] {
            let mut dst = random_row(200, 66);
            let before = dst.clone();
            dst.copy_bits_from(&src, start, end);
            for c in 0..200 {
                let expect = if (start..end).contains(&c) {
                    src.bit(c)
                } else {
                    before.bit(c)
                };
                assert_eq!(dst.bit(c), expect, "col {c} range {start}..{end}");
            }
        }
    }
}
