//! Compile-once / replay-many programs.
//!
//! BP-NTT's central premise is that one instruction stream drives every
//! lane simultaneously and that this stream depends only on the NTT
//! parameters and the data layout — never on the data. This module turns
//! that premise into an execution model:
//!
//! * [`InstrSink`] — the target of kernel code generation. A
//!   [`Controller`] is a sink that executes immediately (the classic
//!   emit-per-call path); a [`Recorder`] is a sink that captures the
//!   stream into a [`ReplayProgram`].
//! * [`ZeroLoopSpec`] — the one dynamic construct the kernels need: a
//!   carry/borrow-resolution loop that senses a row's wired-OR zero flag
//!   each round and terminates early. Recording it as a structured op (with
//!   its alternating bodies and parity-dependent epilogue) keeps the replay
//!   *trace* — every executed instruction, in order — bit-identical to
//!   emission on any data.
//! * [`ReplayProgram::compile`] — validates every address once against a
//!   concrete controller and precomputes every instruction's cycle and
//!   energy cost, yielding a [`CompiledProgram`].
//! * [`Controller::run_compiled`] — the hot path: replays a compiled
//!   program with no codegen, no validation, and no cost-model evaluation
//!   per instruction. Statistics accounting is identical to emission (same
//!   values added in the same order, so even the floating-point energy
//!   total matches bit for bit).
//!
//! # Example
//!
//! ```
//! use bpntt_sram::{
//!     BitOp, BitRow, Controller, InstrSink, Instruction, PredMode, Recorder, RowAddr, SramArray,
//! };
//!
//! let mut ctl = Controller::new(SramArray::new(8, 64)?, 32)?;
//! let mut rec = Recorder::new();
//! let step = Instruction::Binary {
//!     dst: RowAddr(2),
//!     op: BitOp::Xor,
//!     src0: RowAddr(0),
//!     src1: RowAddr(1),
//!     dst2: None,
//!     shift: None,
//!     pred: PredMode::Always,
//! };
//! rec.emit(step)?;
//! let prog = rec.finish().compile(&ctl)?;
//! let mut a = BitRow::zero(64);
//! a.set_tile_word(0, 32, 0b1100);
//! ctl.load_data_row(0, a);
//! let mut b = BitRow::zero(64);
//! b.set_tile_word(0, 32, 0b1010);
//! ctl.load_data_row(1, b);
//! ctl.run_compiled(&prog)?;
//! assert_eq!(ctl.peek_row(2).tile_word(0, 32), 0b0110);
//! # Ok::<(), bpntt_sram::SramError>(())
//! ```

use crate::bitrow::BitRow;
use crate::error::SramError;
use crate::exec::Controller;
use crate::isa::{BitOp, Instruction, RowAddr, ShiftDir, UnaryKind};
use crate::wordkern::FastPathKind;

/// A borrowed description of one zero-terminated resolution loop.
///
/// Semantics (exactly the kernels' hand-written loops): up to `max_checks`
/// rounds of *sense `src`'s zero flag; stop if set; otherwise run this
/// round's body* — where round `k` runs `even_body` for even `k` and
/// `odd_body` for odd `k` (borrow resolution ping-pongs its live row).
/// After the loop, `odd_epilogue` runs iff an odd number of bodies
/// executed (the live row ended up in the "wrong" slot and must be copied
/// back).
#[derive(Debug, Clone, Copy)]
pub struct ZeroLoopSpec<'a> {
    /// Row whose wired-OR zero flag terminates the loop.
    pub src: RowAddr,
    /// Body of even-numbered rounds (0-indexed).
    pub even_body: &'a [Instruction],
    /// Body of odd-numbered rounds.
    pub odd_body: &'a [Instruction],
    /// Maximum number of zero-flag checks (= maximum bodies).
    pub max_checks: usize,
    /// Runs once after the loop iff an odd number of bodies executed.
    pub odd_epilogue: &'a [Instruction],
}

/// The target of kernel code generation: either a [`Controller`]
/// (execute immediately) or a [`Recorder`] (capture for later replay).
pub trait InstrSink {
    /// Emits one straight-line instruction.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults (executing sinks) — recording sinks
    /// never fail.
    fn emit(&mut self, i: Instruction) -> Result<(), SramError>;

    /// Emits one zero-terminated resolution loop.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the loop's instructions.
    fn zero_loop(&mut self, spec: ZeroLoopSpec<'_>) -> Result<(), SramError>;

    /// Emits one data-row load whose contents are known at compile time
    /// (constant rows, twiddle rows — never user data).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    fn load_row(&mut self, row: RowAddr, data: &BitRow) -> Result<(), SramError>;
}

impl InstrSink for Controller {
    fn emit(&mut self, i: Instruction) -> Result<(), SramError> {
        self.fault_tick();
        self.execute(&i)
    }

    fn zero_loop(&mut self, spec: ZeroLoopSpec<'_>) -> Result<(), SramError> {
        // Tick only at the loop boundary, never between rounds: the
        // max_checks convergence bound covers arbitrary data at loop
        // entry but not mid-loop mutation.
        self.fault_tick();
        let mut bodies = 0usize;
        for k in 0..spec.max_checks {
            self.execute(&Instruction::CheckZero { src: spec.src })?;
            if self.zero_flag() {
                break;
            }
            let body = if k % 2 == 0 {
                spec.even_body
            } else {
                spec.odd_body
            };
            for i in body {
                self.execute(i)?;
            }
            bodies += 1;
        }
        debug_assert!(
            self.zero_flag(),
            "resolution loop must converge within max_checks"
        );
        if bodies % 2 == 1 {
            for i in spec.odd_epilogue {
                self.execute(i)?;
            }
        }
        Ok(())
    }

    fn load_row(&mut self, row: RowAddr, data: &BitRow) -> Result<(), SramError> {
        if row.index() >= self.rows() {
            return Err(SramError::RowOutOfRange {
                row: row.index(),
                rows: self.rows(),
            });
        }
        self.load_data_row(row.index(), data.clone());
        Ok(())
    }
}

/// One recorded operation of a [`ReplayProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOp {
    /// A straight-line instruction.
    Instr(Instruction),
    /// A compile-time-constant data-row load.
    LoadRow {
        /// Destination row.
        row: RowAddr,
        /// The row image.
        data: BitRow,
    },
    /// A zero-terminated resolution loop (owned form of [`ZeroLoopSpec`]).
    ZeroLoop {
        /// Row whose zero flag terminates the loop.
        src: RowAddr,
        /// Even-round body.
        even_body: Vec<Instruction>,
        /// Odd-round body.
        odd_body: Vec<Instruction>,
        /// Maximum number of zero-flag checks.
        max_checks: usize,
        /// Runs iff an odd number of bodies executed.
        odd_epilogue: Vec<Instruction>,
    },
}

/// A recorded instruction stream, independent of any controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayProgram {
    ops: Vec<ReplayOp>,
}

impl ReplayProgram {
    /// The recorded operations.
    #[must_use]
    pub fn ops(&self) -> &[ReplayOp] {
        &self.ops
    }

    /// Number of recorded operations (loops count as one).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validates the program against `ctl`'s geometry and lowers it:
    /// every row address and check bit is verified once, and every
    /// instruction's cycle and energy cost under `ctl`'s active models is
    /// precomputed.
    ///
    /// The lowered form is deliberately compact — a flat instruction
    /// stream (14 bytes each) plus one cost-table index byte per
    /// instruction — because replay throughput is bounded by how many
    /// bytes of program stream through the cache per call, not by the
    /// word-level row arithmetic.
    ///
    /// # Errors
    ///
    /// The same address/bit errors [`Controller::execute`] would raise,
    /// surfaced at compile time instead of replay time.
    pub fn compile(&self, ctl: &Controller) -> Result<CompiledProgram, SramError> {
        let mut prog = CompiledProgram {
            instrs: Vec::new(),
            cost_idx: Vec::new(),
            ctrl: Vec::new(),
            body_ctrl: Vec::new(),
            cycles_table: Vec::new(),
            energy_table: Vec::new(),
            loops: Vec::new(),
            loads: Vec::new(),
            addbs: Vec::new(),
            halves: Vec::new(),
            resolve_rounds: Vec::new(),
            borrow_rounds: Vec::new(),
            chains: Vec::new(),
            resolve_loops: Vec::new(),
            borrow_loops: Vec::new(),
            csadds: Vec::new(),
            subinits: Vec::new(),
            condsels: Vec::new(),
            condcopies: Vec::new(),
            signfixes: Vec::new(),
            addb_cost: None,
            halve_cost: None,
            resolve_round_cost: None,
            borrow_round_cost: None,
            csadd_cost: None,
            subinit_cost: None,
            condsel_cost: None,
            condcopy_cost: None,
            signfix_cost: None,
            rows: ctl.rows(),
            cols: ctl.cols(),
            tile_width: ctl.tile_width(),
            fast_path: ctl.fast_path_kind(),
            timing: *ctl.timing_model(),
            energy: *ctl.energy_model(),
        };
        // Straight-line instructions are buffered per segment so the
        // superop matcher sees whole windows.
        let mut segment: Vec<Instruction> = Vec::new();
        for op in &self.ops {
            match op {
                ReplayOp::Instr(i) => segment.push(*i),
                ReplayOp::LoadRow { row, data } => {
                    prog.flush_segment(ctl, &mut segment, false)?;
                    if row.index() >= ctl.rows() {
                        return Err(SramError::RowOutOfRange {
                            row: row.index(),
                            rows: ctl.rows(),
                        });
                    }
                    if data.cols() != ctl.cols() {
                        return Err(SramError::ProgramMismatch {
                            reason: "recorded row image width differs from the array",
                        });
                    }
                    prog.loads.push(LoadStep {
                        row: row.index(),
                        data: data.clone(),
                    });
                    prog.ctrl.push(Ctrl::Load {
                        idx: (prog.loads.len() - 1) as u32,
                    });
                }
                ReplayOp::ZeroLoop {
                    src,
                    even_body,
                    odd_body,
                    max_checks,
                    odd_epilogue,
                } => {
                    prog.flush_segment(ctl, &mut segment, false)?;
                    let check = Instruction::CheckZero { src: *src };
                    ctl.validate_instr(&check)?;
                    let check_cost = prog.intern_cost(ctl, &check);
                    let even = prog.lower_body(ctl, even_body)?;
                    let odd = prog.lower_body(ctl, odd_body)?;
                    let epilogue = prog.lower_body(ctl, odd_epilogue)?;
                    prog.loops.push(LoopStep {
                        src: *src,
                        check_cost,
                        max_checks: *max_checks,
                        even,
                        odd,
                        epilogue,
                    });
                    let loop_idx = (prog.loops.len() - 1) as u32;
                    // Loop-level fusion: a body that is exactly one
                    // carry-resolution round (and no epilogue) runs with
                    // the rows borrowed once across every iteration.
                    let single_round = |r: CtrlRange| -> Option<u32> {
                        if r.1 - r.0 != 1 {
                            return None;
                        }
                        match prog.body_ctrl[r.0 as usize] {
                            Ctrl::ResolveRound { idx } => Some(idx),
                            _ => None,
                        }
                    };
                    let single_borrow = |r: CtrlRange| -> Option<u32> {
                        if r.1 - r.0 != 1 {
                            return None;
                        }
                        match prog.body_ctrl[r.0 as usize] {
                            Ctrl::BorrowRound { idx } => Some(idx),
                            _ => None,
                        }
                    };
                    let fused_resolve = match (single_round(even), single_round(odd)) {
                        (Some(e), Some(o)) if epilogue.0 == epilogue.1 => {
                            let (re, ro) = (
                                &prog.resolve_rounds[e as usize],
                                &prog.resolve_rounds[o as usize],
                            );
                            (re.s == ro.s && re.c == ro.c && re.c == src.0).then_some((re.s, re.c))
                        }
                        _ => None,
                    };
                    let fused_borrow = match (single_borrow(even), single_borrow(odd)) {
                        (Some(e), Some(o)) => {
                            let (be, bo) = (
                                &prog.borrow_rounds[e as usize],
                                &prog.borrow_rounds[o as usize],
                            );
                            (be.b == bo.b
                                && be.b == src.0
                                && be.s_cur == bo.s_other
                                && be.s_other == bo.s_cur)
                                .then_some((be.s_cur, be.s_other, be.b))
                        }
                        _ => None,
                    };
                    if let Some((s, c)) = fused_resolve {
                        prog.resolve_loops.push(ResolveLoopOp {
                            s,
                            c,
                            max_checks: *max_checks,
                            check_cost,
                            fallback_loop: loop_idx,
                        });
                        prog.ctrl.push(Ctrl::ResolveLoop {
                            idx: (prog.resolve_loops.len() - 1) as u32,
                        });
                    } else if let Some((live, other, t)) = fused_borrow {
                        prog.borrow_loops.push(BorrowLoopOp {
                            live,
                            other,
                            t,
                            max_checks: *max_checks,
                            check_cost,
                            epilogue,
                            fallback_loop: loop_idx,
                        });
                        prog.ctrl.push(Ctrl::BorrowLoop {
                            idx: (prog.borrow_loops.len() - 1) as u32,
                        });
                    } else {
                        prog.ctrl.push(Ctrl::Loop { idx: loop_idx });
                    }
                }
            }
        }
        prog.flush_segment(ctl, &mut segment, false)?;
        prog.chain_pass();
        Ok(prog)
    }
}

// ---- superop pattern matching ---------------------------------------------

fn distinct(rows: &[u16]) -> bool {
    rows.iter()
        .enumerate()
        .all(|(i, a)| rows[i + 1..].iter().all(|b| a != b))
}

/// Matches the add-B half-adder pass emitted by Algorithm 2 lines 6–9.
fn match_addb(w: &[Instruction]) -> Option<AddBOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let (tc, s, b, ts, pred) = match *w.first()? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred,
        } => (dst.0, src0.0, src1.0, d2.0, pred),
        _ => return None,
    };
    let c = match *w.get(1)? {
        I::Shift {
            dst,
            src,
            dir: ShiftDir::Left,
            masked: false,
            pred: p,
        } if dst == src && p == pred => dst.0,
        _ => return None,
    };
    match *w.get(2)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred: p,
        } if dst.0 == c && src0.0 == c && src1.0 == ts && d2.0 == s && p == pred => {}
        _ => return None,
    }
    match *w.get(3)? {
        I::Binary {
            dst,
            op: BitOp::Or,
            src0,
            src1,
            dst2: None,
            shift: None,
            pred: p,
        } if dst.0 == c && src0.0 == c && src1.0 == tc && p == pred => {}
        _ => return None,
    }
    // The executor borrows all five rows disjointly: b must not alias
    // any accumulator row.
    if !distinct(&[s, c, ts, tc, b]) {
        return None;
    }
    if matches!(pred, P::IfClear) {
        // Emitted kernels never use IfClear here; keep the fused executor's
        // tested surface small.
        return None;
    }
    Some(AddBOp {
        sum: s,
        b,
        carry: c,
        t_sum: ts,
        t_carry: tc,
        pred,
        fallback: (0, 0),
    })
}

/// Matches the Montgomery halve step (Algorithm 2 lines 11–16).
fn match_halve(w: &[Instruction]) -> Option<HalveOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let s = match *w.first()? {
        I::Check { src, bit: 0 } => src.0,
        _ => return None,
    };
    let (ts, m, tc) = match *w.get(1)? {
        I::Binary {
            dst,
            op: BitOp::Xor,
            src0,
            src1,
            dst2: Some((d2, BitOp::And)),
            shift: Some((ShiftDir::Right, true)),
            pred: P::IfSet,
        } if src0.0 == s => (dst.0, src1.0, d2.0),
        _ => return None,
    };
    match *w.get(2)? {
        I::Shift {
            dst,
            src,
            dir: ShiftDir::Right,
            masked: true,
            pred: P::IfClear,
        } if dst.0 == ts && src.0 == s => {}
        _ => return None,
    }
    match *w.get(3)? {
        I::Unary {
            dst,
            kind: UnaryKind::Zero,
            pred: P::IfClear,
            ..
        } if dst.0 == tc => {}
        _ => return None,
    }
    match *w.get(4)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred: P::Always,
        } if dst.0 == tc && src0.0 == ts && src1.0 == tc && d2.0 == ts => {}
        _ => return None,
    }
    let c = match *w.get(5)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred: P::Always,
        } if dst == src0 && src1.0 == ts && d2.0 == s => dst.0,
        _ => return None,
    };
    match *w.get(6)? {
        I::Binary {
            dst,
            op: BitOp::Or,
            src0,
            src1,
            dst2: None,
            shift: None,
            pred: P::Always,
        } if dst.0 == c && src0.0 == c && src1.0 == tc => {}
        _ => return None,
    }
    if !distinct(&[s, c, ts, tc, m]) {
        return None;
    }
    Some(HalveOp {
        sum: s,
        carry: c,
        t_sum: ts,
        t_carry: tc,
        modulus: m,
        fallback: (0, 0),
    })
}

/// Matches one carry-resolution round (tile-masked shift + dual binary).
fn match_resolve_round(w: &[Instruction]) -> Option<ResolveRoundOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let c = match *w.first()? {
        I::Shift {
            dst,
            src,
            dir: ShiftDir::Left,
            masked: true,
            pred: P::Always,
        } if dst == src => dst.0,
        _ => return None,
    };
    let s = match *w.get(1)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred: P::Always,
        } if dst.0 == c && src1.0 == c && src0 == d2 => src0.0,
        _ => return None,
    };
    if s == c {
        return None;
    }
    Some(ResolveRoundOp {
        s,
        c,
        fallback: (0, 0),
    })
}

/// Matches one borrow-resolution round (tile-masked shift + two binaries).
fn match_borrow_round(w: &[Instruction]) -> Option<BorrowRoundOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let b = match *w.first()? {
        I::Shift {
            dst,
            src,
            dir: ShiftDir::Left,
            masked: true,
            pred: P::Always,
        } if dst == src => dst.0,
        _ => return None,
    };
    let (s_other, s_cur) = match *w.get(1)? {
        I::Binary {
            dst,
            op: BitOp::Xor,
            src0,
            src1,
            dst2: None,
            shift: None,
            pred: P::Always,
        } if src1.0 == b => (dst.0, src0.0),
        _ => return None,
    };
    match *w.get(2)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: None,
            shift: None,
            pred: P::Always,
        } if dst.0 == b && src0.0 == s_other && src1.0 == b => {}
        _ => return None,
    }
    if !distinct(&[s_cur, s_other, b]) {
        return None;
    }
    Some(BorrowRoundOp {
        s_cur,
        s_other,
        b,
        fallback: (0, 0),
    })
}

/// Matches the sign-fix tail of borrow-save subtraction (`sub_mod`).
fn match_signfix(w: &[Instruction]) -> Option<SignFixOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let (s, bit) = match *w.first()? {
        I::Check { src, bit } => (src.0, bit),
        _ => return None,
    };
    let c = match *w.get(1)? {
        I::Unary {
            dst,
            kind: UnaryKind::Zero,
            pred: P::Always,
            ..
        } => dst.0,
        _ => return None,
    };
    let m = match *w.get(2)? {
        I::Unary {
            dst,
            src,
            kind: UnaryKind::Copy,
            pred: P::IfSet,
        } if dst.0 == c => src.0,
        _ => return None,
    };
    let tc = match *w.get(3)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred: P::Always,
        } if src0.0 == s && src1.0 == c && d2.0 == s => dst.0,
        _ => return None,
    };
    if !distinct(&[s, c, tc, m]) {
        return None;
    }
    Some(SignFixOp {
        s,
        bit,
        c,
        t_carry: tc,
        modulus: m,
        fallback: (0, 0),
    })
}

/// Matches the conditional-select epilogue of `add_mod`.
fn match_condsel(w: &[Instruction]) -> Option<CondSelOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let (cs, bit) = match *w.first()? {
        I::Check { src, bit } => (src.0, bit),
        _ => return None,
    };
    let (dst, a) = match *w.get(1)? {
        I::Unary {
            dst,
            src,
            kind: UnaryKind::Copy,
            pred: P::IfSet,
        } => (dst.0, src.0),
        _ => return None,
    };
    let b = match *w.get(2)? {
        I::Unary {
            dst: d2,
            src,
            kind: UnaryKind::Copy,
            pred: P::IfClear,
        } if d2.0 == dst => src.0,
        _ => return None,
    };
    // The executor borrows the three select rows disjointly; the check
    // source may alias any of them (it is only read, before any write).
    if !distinct(&[dst, a, b]) {
        return None;
    }
    Some(CondSelOp {
        check_src: cs,
        bit,
        dst,
        a,
        b,
        fallback: (0, 0),
    })
}

/// Matches a predicate latch followed by one predicated copy
/// (`cond_sub_q`'s select tail).
fn match_condcopy(w: &[Instruction]) -> Option<CondCopyOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let (cs, bit) = match *w.first()? {
        I::Check { src, bit } => (src.0, bit),
        _ => return None,
    };
    let (dst, src, pred) = match *w.get(1)? {
        I::Unary {
            dst,
            src,
            kind: UnaryKind::Copy,
            pred: pred @ (P::IfSet | P::IfClear),
        } => (dst.0, src.0, pred),
        _ => return None,
    };
    if dst == src {
        return None;
    }
    Some(CondCopyOp {
        check_src: cs,
        bit,
        dst,
        src,
        pred,
        fallback: (0, 0),
    })
}

/// Matches the borrow-save subtract initiator (`sub_mod` lines 1–2).
fn match_subinit(w: &[Instruction]) -> Option<SubInitOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let (ts, x, y) = match *w.first()? {
        I::Binary {
            dst,
            op: BitOp::Xor,
            src0,
            src1,
            dst2: None,
            shift: None,
            pred: P::Always,
        } => (dst.0, src0.0, src1.0),
        _ => return None,
    };
    let tc = match *w.get(1)? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: None,
            shift: None,
            pred: P::Always,
        } if src0.0 == ts && src1.0 == y => dst.0,
        _ => return None,
    };
    if !distinct(&[ts, tc, x, y]) {
        return None;
    }
    Some(SubInitOp {
        t_sum: ts,
        t_carry: tc,
        x,
        y,
        fallback: (0, 0),
    })
}

/// Matches a lone dual write-back carry-save add (`d_and, d_xor =
/// a ∧ b, a ⊕ b`). Tried after every longer pattern — the add-B step
/// starts with this exact shape.
fn match_csadd(w: &[Instruction]) -> Option<CsAddOp> {
    use crate::isa::PredMode as P;
    use Instruction as I;
    let (da, a, b, dx) = match *w.first()? {
        I::Binary {
            dst,
            op: BitOp::And,
            src0,
            src1,
            dst2: Some((d2, BitOp::Xor)),
            shift: None,
            pred: P::Always,
        } => (dst.0, src0.0, src1.0, d2.0),
        _ => return None,
    };
    if !distinct(&[da, dx, a, b]) {
        return None;
    }
    Some(CsAddOp {
        d_and: da,
        d_xor: dx,
        a,
        b,
        fallback: (0, 0),
    })
}

/// Records an instruction stream instead of executing it.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    ops: Vec<ReplayOp>,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Finishes recording.
    #[must_use]
    pub fn finish(self) -> ReplayProgram {
        ReplayProgram { ops: self.ops }
    }
}

impl InstrSink for Recorder {
    fn emit(&mut self, i: Instruction) -> Result<(), SramError> {
        self.ops.push(ReplayOp::Instr(i));
        Ok(())
    }

    fn zero_loop(&mut self, spec: ZeroLoopSpec<'_>) -> Result<(), SramError> {
        self.ops.push(ReplayOp::ZeroLoop {
            src: spec.src,
            even_body: spec.even_body.to_vec(),
            odd_body: spec.odd_body.to_vec(),
            max_checks: spec.max_checks,
            odd_epilogue: spec.odd_epilogue.to_vec(),
        });
        Ok(())
    }

    fn load_row(&mut self, row: RowAddr, data: &BitRow) -> Result<(), SramError> {
        self.ops.push(ReplayOp::LoadRow {
            row,
            data: data.clone(),
        });
        Ok(())
    }
}

// ---- fused emission -------------------------------------------------------

/// The longest fusable instruction window (the Montgomery halve step).
const MAX_PATTERN: usize = 7;

/// The row set of a run of matched add-B/halve groups whose execution is
/// deferred so the whole multiplier chain can run register-resident (the
/// emission-path counterpart of the compiler's `chain_pass`). The step
/// and instruction buffers live on the sink and are reused across
/// chains — a 256-point call flushes ~1024 of them.
struct PendingChain {
    sum: u16,
    carry: u16,
    t_sum: u16,
    t_carry: u16,
    b: Option<u16>,
    modulus: Option<u16>,
}

/// An [`InstrSink`] that *executes* like a [`Controller`] but routes the
/// recorded-shape instruction groups through the same fused word-engine
/// executors compiled-program replay uses.
///
/// Emission used to execute every instruction generically — ~15 generic
/// instructions per butterfly epilogue plus hundreds per multiplier chain
/// — while replay ran them as single-pass superops. This sink closes that
/// gap: it buffers a [`MAX_PATTERN`]-instruction lookahead window, matches
/// the same shapes the replay compiler's peephole pass matches (in the
/// same order), accumulates consecutive add-B/halve groups into
/// register-resident multiplier chains, and executes resolution
/// [`ZeroLoopSpec`]s through the fused loop executors. Anything
/// unrecognized — and every fused shape when a tile mask is active —
/// executes per-instruction, exactly as before.
///
/// Rows, predicate latches, the zero flag, and [`crate::Stats`] (including
/// the floating-point energy accumulation order) are bit-identical to
/// per-instruction emission; the workspace's word-engine equivalence
/// proptests pin replay ≡ fused emission ≡ generic emission.
///
/// Call [`FusedSink::finish`] when code generation completes — dropping
/// the sink with instructions still buffered discards them.
pub struct FusedSink<'c> {
    ctl: &'c mut Controller,
    window: Vec<Instruction>,
    chain: Option<PendingChain>,
    /// The pending chain's steps (reused buffer).
    chain_steps: Vec<ChainStep>,
    /// The pending chain's original instructions in emission order (4 per
    /// add-B, 7 per halve) — the cost source, and the fallback when the
    /// chain cannot run fused (reused buffer).
    chain_instrs: Vec<Instruction>,
    /// Reused live-model cost buffer for fused resolution loops.
    round_cost: GroupCost,
}

impl<'c> FusedSink<'c> {
    /// Wraps a controller for fused emission.
    pub fn new(ctl: &'c mut Controller) -> Self {
        FusedSink {
            ctl,
            window: Vec::with_capacity(2 * MAX_PATTERN),
            chain: None,
            chain_steps: Vec::new(),
            chain_instrs: Vec::new(),
            round_cost: GroupCost {
                cycles: 0,
                counts: crate::stats::InstrCounts::default(),
                energy: Vec::new(),
            },
        }
    }

    /// Executes everything still buffered. Must be called once code
    /// generation is complete; the controller is only guaranteed to
    /// reflect the full emitted stream after this returns.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the deferred instructions.
    pub fn finish(mut self) -> Result<(), SramError> {
        self.flush()
    }

    fn flush(&mut self) -> Result<(), SramError> {
        while !self.window.is_empty() {
            self.step()?;
        }
        self.flush_chain()
    }

    /// Consumes one fused group or one generic instruction from the front
    /// of the window. Matcher order is identical to the replay compiler's
    /// `lower_into`, so fused emission recognizes exactly the groups
    /// replay fuses.
    fn step(&mut self) -> Result<(), SramError> {
        let w = self.window.as_slice();
        if let Some(op) = match_halve(w) {
            self.validate_window(7)?;
            self.push_chain_halve(op)?;
            self.window.drain(..7);
            return Ok(());
        }
        if let Some(op) = match_signfix(w) {
            self.flush_chain()?;
            self.validate_window(4)?;
            let fused = self.ctl.exec_signfix(&op);
            return self.finish_group(4, fused);
        }
        if let Some(op) = match_condsel(w) {
            self.flush_chain()?;
            self.validate_window(3)?;
            let fused = self.ctl.exec_condsel(&op);
            return self.finish_group(3, fused);
        }
        if let Some(op) = match_condcopy(w) {
            self.flush_chain()?;
            self.validate_window(2)?;
            let fused = self.ctl.exec_condcopy(&op);
            return self.finish_group(2, fused);
        }
        if let Some(op) = match_addb(w) {
            self.validate_window(4)?;
            self.push_chain_addb(op)?;
            self.window.drain(..4);
            return Ok(());
        }
        if let Some(op) = match_subinit(w) {
            self.flush_chain()?;
            self.validate_window(2)?;
            let fused = self.ctl.exec_subinit(&op);
            return self.finish_group(2, fused);
        }
        if let Some(op) = match_borrow_round(w) {
            self.flush_chain()?;
            self.validate_window(3)?;
            let fused = self.ctl.exec_borrow_round(&op);
            return self.finish_group(3, fused);
        }
        if let Some(op) = match_resolve_round(w) {
            self.flush_chain()?;
            self.validate_window(2)?;
            let fused = self.ctl.exec_resolve_round(&op);
            return self.finish_group(2, fused);
        }
        if let Some(op) = match_csadd(w) {
            self.flush_chain()?;
            self.validate_window(1)?;
            let fused = self.ctl.exec_csadd(&op);
            return self.finish_group(1, fused);
        }
        // Generic: execute the front instruction as emission always has.
        self.flush_chain()?;
        let i = self.window.remove(0);
        self.ctl.execute(&i)
    }

    fn validate_window(&self, len: usize) -> Result<(), SramError> {
        for i in &self.window[..len] {
            self.ctl.validate_instr(i)?;
        }
        Ok(())
    }

    /// Settles a matched group's statistics and window: fused execution
    /// already happened (costs follow, in emission order); a declined
    /// fusion (tile mask, aliasing) re-executes per-instruction.
    fn finish_group(&mut self, len: usize, fused: bool) -> Result<(), SramError> {
        if fused {
            self.ctl.add_emit_group_cost(&self.window[..len]);
        } else {
            for i in &self.window[..len] {
                self.ctl.execute(i)?;
            }
        }
        self.window.drain(..len);
        Ok(())
    }

    fn push_chain_addb(&mut self, op: AddBOp) -> Result<(), SramError> {
        let rows = (op.sum, op.carry, op.t_sum, op.t_carry);
        let extends = self.chain.as_ref().is_some_and(|ch| {
            (ch.sum, ch.carry, ch.t_sum, ch.t_carry) == rows && ch.b.is_none_or(|x| x == op.b)
        });
        if !extends {
            self.flush_chain()?;
            self.chain = Some(PendingChain {
                sum: op.sum,
                carry: op.carry,
                t_sum: op.t_sum,
                t_carry: op.t_carry,
                b: None,
                modulus: None,
            });
        }
        let ch = self.chain.as_mut().expect("chain just ensured");
        ch.b = Some(op.b);
        self.chain_steps.push(ChainStep::AddB(op.pred));
        self.chain_instrs.extend_from_slice(&self.window[..4]);
        Ok(())
    }

    fn push_chain_halve(&mut self, op: HalveOp) -> Result<(), SramError> {
        let rows = (op.sum, op.carry, op.t_sum, op.t_carry);
        let extends = self.chain.as_ref().is_some_and(|ch| {
            (ch.sum, ch.carry, ch.t_sum, ch.t_carry) == rows
                && ch.modulus.is_none_or(|x| x == op.modulus)
        });
        if !extends {
            self.flush_chain()?;
            self.chain = Some(PendingChain {
                sum: op.sum,
                carry: op.carry,
                t_sum: op.t_sum,
                t_carry: op.t_carry,
                b: None,
                modulus: None,
            });
        }
        let ch = self.chain.as_mut().expect("chain just ensured");
        ch.modulus = Some(op.modulus);
        self.chain_steps.push(ChainStep::Halve);
        self.chain_instrs.extend_from_slice(&self.window[..7]);
        Ok(())
    }

    /// Executes the pending chain: whole-chain fused when it has both
    /// operand rows and every row is distinct (the compiler's
    /// `chain_pass` condition), per-group fused otherwise, with the
    /// per-instruction fallback when an executor declines.
    fn flush_chain(&mut self) -> Result<(), SramError> {
        let Some(ch) = self.chain.take() else {
            debug_assert!(self.chain_steps.is_empty() && self.chain_instrs.is_empty());
            return Ok(());
        };
        let chainable = self.chain_steps.len() >= 2
            && ch.b.is_some()
            && ch.modulus.is_some()
            && distinct(&[
                ch.sum,
                ch.carry,
                ch.t_sum,
                ch.t_carry,
                ch.b.unwrap(),
                ch.modulus.unwrap(),
            ]);
        if chainable
            && self.ctl.exec_chain(
                ch.sum,
                ch.carry,
                ch.t_sum,
                ch.t_carry,
                ch.b.unwrap(),
                ch.modulus.unwrap(),
                &self.chain_steps,
            )
        {
            self.ctl.add_emit_group_cost(&self.chain_instrs);
            self.chain_steps.clear();
            self.chain_instrs.clear();
            return Ok(());
        }
        // Per-group execution (lone steps, missing operand rows, aliased
        // rows, or a declined whole-chain run under an active tile mask).
        let mut off = 0usize;
        for step in &self.chain_steps {
            match *step {
                ChainStep::AddB(pred) => {
                    let group = &self.chain_instrs[off..off + 4];
                    let fused = self.ctl.exec_addb(&AddBOp {
                        sum: ch.sum,
                        b: ch.b.expect("add-B step implies a b row"),
                        carry: ch.carry,
                        t_sum: ch.t_sum,
                        t_carry: ch.t_carry,
                        pred,
                        fallback: (0, 0),
                    });
                    if fused {
                        self.ctl.add_emit_group_cost(group);
                    } else {
                        for i in group {
                            self.ctl.execute(i)?;
                        }
                    }
                    off += 4;
                }
                ChainStep::Halve => {
                    let group = &self.chain_instrs[off..off + 7];
                    let fused = self.ctl.exec_halve(&HalveOp {
                        sum: ch.sum,
                        carry: ch.carry,
                        t_sum: ch.t_sum,
                        t_carry: ch.t_carry,
                        modulus: ch.modulus.expect("halve step implies a modulus row"),
                        fallback: (0, 0),
                    });
                    if fused {
                        self.ctl.add_emit_group_cost(group);
                    } else {
                        for i in group {
                            self.ctl.execute(i)?;
                        }
                    }
                    off += 7;
                }
            }
        }
        debug_assert_eq!(off, self.chain_instrs.len());
        self.chain_steps.clear();
        self.chain_instrs.clear();
        Ok(())
    }
}

impl InstrSink for FusedSink<'_> {
    fn emit(&mut self, i: Instruction) -> Result<(), SramError> {
        self.ctl.fault_tick();
        self.window.push(i);
        // Keep a full lookahead window so a short prefix of a long
        // pattern is never claimed by a shorter matcher (replay lowers
        // whole segments and sees the same windows).
        while self.window.len() >= MAX_PATTERN {
            self.step()?;
        }
        Ok(())
    }

    fn zero_loop(&mut self, spec: ZeroLoopSpec<'_>) -> Result<(), SramError> {
        self.flush()?;
        self.ctl.fault_tick();
        let check = Instruction::CheckZero { src: spec.src };
        self.ctl.validate_instr(&check)?;
        let check_cycles = self.ctl.timing_model().cycles(&check);
        let check_energy = self.ctl.energy_model().energy_pj(&check, self.ctl.cols());
        // A loop whose body is exactly one carry-resolution round (and no
        // epilogue) runs fully fused — the same condition the replay
        // compiler requires for its loop-level fusion.
        if spec.even_body.len() == 2 && spec.odd_body.len() == 2 && spec.odd_epilogue.is_empty() {
            if let (Some(re), Some(ro)) = (
                match_resolve_round(spec.even_body),
                match_resolve_round(spec.odd_body),
            ) {
                if re.s == ro.s && re.c == ro.c && re.c == spec.src.0 {
                    self.validate_body(spec.even_body)?;
                    self.ctl
                        .fill_emit_group_cost(spec.even_body, &mut self.round_cost);
                    if self
                        .ctl
                        .exec_resolve_loop(
                            re.s,
                            re.c,
                            spec.max_checks,
                            check_cycles,
                            check_energy,
                            &self.round_cost,
                        )
                        .is_some()
                    {
                        return Ok(());
                    }
                }
            }
        }
        // Borrow-resolution loops: one round per parity, the live row
        // ping-ponging, the odd-parity epilogue still generic.
        if spec.even_body.len() == 3 && spec.odd_body.len() == 3 {
            if let (Some(be), Some(bo)) = (
                match_borrow_round(spec.even_body),
                match_borrow_round(spec.odd_body),
            ) {
                if be.b == bo.b
                    && be.b == spec.src.0
                    && be.s_cur == bo.s_other
                    && be.s_other == bo.s_cur
                {
                    self.validate_body(spec.even_body)?;
                    self.validate_body(spec.odd_epilogue)?;
                    self.ctl
                        .fill_emit_group_cost(spec.even_body, &mut self.round_cost);
                    if let Some(bodies) = self.ctl.exec_borrow_loop(
                        be.s_cur,
                        be.s_other,
                        be.b,
                        spec.max_checks,
                        check_cycles,
                        check_energy,
                        &self.round_cost,
                    ) {
                        if bodies % 2 == 1 {
                            for i in spec.odd_epilogue {
                                self.ctl.execute(i)?;
                            }
                        }
                        return Ok(());
                    }
                }
            }
        }
        self.ctl.zero_loop(spec)
    }

    fn load_row(&mut self, row: RowAddr, data: &BitRow) -> Result<(), SramError> {
        self.flush()?;
        self.ctl.load_row(row, data)
    }
}

impl FusedSink<'_> {
    fn validate_body(&self, instrs: &[Instruction]) -> Result<(), SramError> {
        for i in instrs {
            self.ctl.validate_instr(i)?;
        }
        Ok(())
    }
}

/// Control-stream entry: one unit of replay execution.
///
/// Beyond generic instruction runs, the compiler recognizes the four
/// instruction shapes that dominate Algorithm 2 — the add-B step, the
/// Montgomery halve step, and the carry/borrow resolution rounds — and
/// lowers each occurrence to a *fused superop*: one pass over the storage
/// words computing the whole group's final row contents, with
/// pre-aggregated statistics. Fusion is a pure execution-strategy change:
/// rows and [`crate::Stats`] are bit-identical to per-instruction
/// execution, and each superop keeps its original instruction range as a
/// fallback (taken when a tile mask is active, where the general gating
/// semantics apply).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ctrl {
    /// Execute `len` consecutive instructions starting at `start`.
    Run { start: u32, len: u32 },
    /// Execute `loops[idx]` (a zero-terminated resolution loop).
    Loop { idx: u32 },
    /// Execute `loads[idx]` (a constant data-row load).
    Load { idx: u32 },
    /// Fused Algorithm 2 add-B step (`addbs[idx]`).
    AddB { idx: u32 },
    /// Fused Montgomery halve step (`halves[idx]`).
    Halve { idx: u32 },
    /// Fused carry-resolution round (`resolve_rounds[idx]`).
    ResolveRound { idx: u32 },
    /// Fused borrow-resolution round (`borrow_rounds[idx]`).
    BorrowRound { idx: u32 },
    /// Fused multiplier chain — a run of add-B/halve steps over one
    /// accumulator row set, rows borrowed once (`chains[idx]`).
    Chain { idx: u32 },
    /// Fused carry-save add initiator (`csadds[idx]`).
    CsAdd { idx: u32 },
    /// Fused borrow-save subtract initiator (`subinits[idx]`).
    SubInit { idx: u32 },
    /// Fused conditional select epilogue (`condsels[idx]`).
    CondSel { idx: u32 },
    /// Fused conditional copy epilogue (`condcopies[idx]`).
    CondCopy { idx: u32 },
    /// Fused subtraction sign-fix (`signfixes[idx]`).
    SignFix { idx: u32 },
    /// Fully fused carry-resolution loop (`resolve_loops[idx]`).
    ResolveLoop { idx: u32 },
    /// Fully fused borrow-resolution loop (`borrow_loops[idx]`).
    BorrowLoop { idx: u32 },
}

/// One step of a fused multiplier chain.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ChainStep {
    /// Add-B step with its write predication.
    AddB(crate::isa::PredMode),
    /// Montgomery halve step (predicate latched internally).
    Halve,
}

/// A run of add-B/halve steps sharing one accumulator row set — the
/// inner loop of Algorithm 2, executed with the rows borrowed once.
#[derive(Debug, Clone)]
pub(crate) struct ChainOp {
    pub sum: u16,
    pub carry: u16,
    pub t_sum: u16,
    pub t_carry: u16,
    pub b: u16,
    pub modulus: u16,
    pub steps: Vec<ChainStep>,
    /// Whole-chain cycle and count sums (energy still accumulates value
    /// by value from the per-pattern tables to stay bit-identical).
    pub cycles: u64,
    pub counts: crate::stats::InstrCounts,
    /// The original control entries, for the masked-state fallback.
    pub fallback_ops: Vec<Ctrl>,
}

/// A zero-loop whose body is exactly one carry-resolution round: the
/// whole dynamic loop runs with the two rows borrowed once.
#[derive(Debug, Clone)]
pub(crate) struct ResolveLoopOp {
    pub s: u16,
    pub c: u16,
    pub max_checks: usize,
    pub check_cost: u8,
    /// Generic `LoopStep` index for the masked-state fallback.
    pub fallback_loop: u32,
}

/// A zero-loop whose bodies are one borrow-resolution round each (the
/// two parities swapping the live row), fully fused; the odd-parity
/// epilogue stays generic and runs after the borrows are released.
#[derive(Debug, Clone)]
pub(crate) struct BorrowLoopOp {
    /// Even rounds' live row (`s_cur`); odd rounds swap with `other`.
    pub live: u16,
    pub other: u16,
    /// The borrow row (also the zero-checked row).
    pub t: u16,
    pub max_checks: usize,
    pub check_cost: u8,
    pub epilogue: CtrlRange,
    /// Generic `LoopStep` index for the masked-state fallback.
    pub fallback_loop: u32,
}

/// A range into the flat instruction arrays.
type InstrRange = (u32, u32);

/// Fused `P ← P + B` half-adder pass (4 instructions; see
/// [`ZeroLoopSpec`] docs for the emission shape).
#[derive(Debug, Clone)]
pub(crate) struct AddBOp {
    pub sum: u16,
    pub b: u16,
    pub carry: u16,
    pub t_sum: u16,
    pub t_carry: u16,
    pub pred: crate::isa::PredMode,
    pub fallback: InstrRange,
}

/// Fused Montgomery halve step (Check + 6 instructions).
#[derive(Debug, Clone)]
pub(crate) struct HalveOp {
    pub sum: u16,
    pub carry: u16,
    pub t_sum: u16,
    pub t_carry: u16,
    pub modulus: u16,
    pub fallback: InstrRange,
}

/// Fused carry-resolution round (masked shift + dual-writeback binary).
#[derive(Debug, Clone)]
pub(crate) struct ResolveRoundOp {
    pub s: u16,
    pub c: u16,
    pub fallback: InstrRange,
}

/// Fused borrow-resolution round (masked shift + two binaries).
#[derive(Debug, Clone)]
pub(crate) struct BorrowRoundOp {
    pub s_cur: u16,
    pub s_other: u16,
    pub b: u16,
    pub fallback: InstrRange,
}

/// Fused carry-save add initiator: one dual write-back `Binary`
/// (`d_and, d_xor = a ∧ b, a ⊕ b`) executed as a single pass instead of
/// two scratch-row passes plus two write-backs.
#[derive(Debug, Clone)]
pub(crate) struct CsAddOp {
    pub d_and: u16,
    pub d_xor: u16,
    pub a: u16,
    pub b: u16,
    pub fallback: InstrRange,
}

/// Fused borrow-save subtract initiator (`sub_mod` lines 1–2):
/// `t_sum = x ⊕ y; t_carry = t_sum ∧ y` — two `Binary`s, one pass.
#[derive(Debug, Clone)]
pub(crate) struct SubInitOp {
    pub t_sum: u16,
    pub t_carry: u16,
    pub x: u16,
    pub y: u16,
    pub fallback: InstrRange,
}

/// Fused conditional select (`add_mod` epilogue): `Check(check_src, bit)`
/// then `dst ← a` where the predicate is set, `dst ← b` where clear —
/// three instructions, one latch plus one pass.
#[derive(Debug, Clone)]
pub(crate) struct CondSelOp {
    pub check_src: u16,
    pub bit: u16,
    pub dst: u16,
    pub a: u16,
    pub b: u16,
    pub fallback: InstrRange,
}

/// Fused conditional copy (`cond_sub_q` epilogue): `Check(check_src, bit)`
/// then one predicated `dst ← src` copy.
#[derive(Debug, Clone)]
pub(crate) struct CondCopyOp {
    pub check_src: u16,
    pub bit: u16,
    pub dst: u16,
    pub src: u16,
    pub pred: crate::isa::PredMode,
    pub fallback: InstrRange,
}

/// Fused sign-fix of borrow-save subtraction (`sub_mod`): `Check(s, bit)`;
/// `c ← 0`; `c ← M` where set; `t_carry, s = s ∧ c, s ⊕ c` — four
/// instructions, one latch plus one pass.
#[derive(Debug, Clone)]
pub(crate) struct SignFixOp {
    pub s: u16,
    pub bit: u16,
    pub c: u16,
    pub t_carry: u16,
    pub modulus: u16,
    pub fallback: InstrRange,
}

/// Pre-aggregated execution cost of one fused group: exact cycle and
/// count sums plus the per-instruction energy values in emission order
/// (energies are added one by one so the floating-point accumulation is
/// bit-identical to per-instruction execution).
#[derive(Debug, Clone)]
pub(crate) struct GroupCost {
    pub cycles: u64,
    pub counts: crate::stats::InstrCounts,
    pub energy: Vec<f64>,
}

/// A range into the lowered loop-body control stream.
type CtrlRange = (u32, u32);

#[derive(Debug, Clone)]
struct LoopStep {
    src: RowAddr,
    check_cost: u8,
    max_checks: usize,
    even: CtrlRange,
    odd: CtrlRange,
    epilogue: CtrlRange,
}

#[derive(Debug, Clone)]
struct LoadStep {
    row: usize,
    data: BitRow,
}

/// A validated, cost-annotated program bound to one controller
/// configuration (geometry, tile width, and cost models). Cheap to clone
/// behind an `Arc` and share across identically configured controllers —
/// the sharded batch engine replays one compiled program on every shard.
///
/// Layout note: the instruction stream is stored structure-of-arrays —
/// `instrs` (14 B/instruction) parallel to `cost_idx` (1 B/instruction,
/// an index into the deduplicated `cycles_table`/`energy_table`). A
/// 256-point NTT program is a few hundred thousand instructions; keeping
/// the per-instruction footprint at 15 bytes (instead of a naïve
/// cost-annotated enum at ~100 bytes) is what makes replay faster than
/// re-emission — the replay loop is memory-bound on the program stream.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    instrs: Vec<Instruction>,
    cost_idx: Vec<u8>,
    ctrl: Vec<Ctrl>,
    /// Loop bodies are lowered like the top level, but into this separate
    /// stream (a body never contains loops or loads).
    body_ctrl: Vec<Ctrl>,
    cycles_table: Vec<u64>,
    energy_table: Vec<f64>,
    loops: Vec<LoopStep>,
    loads: Vec<LoadStep>,
    pub(crate) addbs: Vec<AddBOp>,
    pub(crate) halves: Vec<HalveOp>,
    pub(crate) resolve_rounds: Vec<ResolveRoundOp>,
    pub(crate) borrow_rounds: Vec<BorrowRoundOp>,
    pub(crate) chains: Vec<ChainOp>,
    pub(crate) resolve_loops: Vec<ResolveLoopOp>,
    pub(crate) borrow_loops: Vec<BorrowLoopOp>,
    pub(crate) csadds: Vec<CsAddOp>,
    pub(crate) subinits: Vec<SubInitOp>,
    pub(crate) condsels: Vec<CondSelOp>,
    pub(crate) condcopies: Vec<CondCopyOp>,
    pub(crate) signfixes: Vec<SignFixOp>,
    pub(crate) addb_cost: Option<GroupCost>,
    pub(crate) halve_cost: Option<GroupCost>,
    pub(crate) resolve_round_cost: Option<GroupCost>,
    pub(crate) borrow_round_cost: Option<GroupCost>,
    pub(crate) csadd_cost: Option<GroupCost>,
    pub(crate) subinit_cost: Option<GroupCost>,
    pub(crate) condsel_cost: Option<GroupCost>,
    pub(crate) condcopy_cost: Option<GroupCost>,
    pub(crate) signfix_cost: Option<GroupCost>,
    rows: usize,
    cols: usize,
    tile_width: usize,
    /// The fused chain/loop execution strategy, decided once at compile
    /// time from the padded row width ([`FastPathKind::for_words`]) so
    /// replay never re-derives it per superop. Always equals the
    /// controller's own kind when the geometry check passes.
    fast_path: FastPathKind,
    timing: crate::cost::TimingModel,
    energy: crate::cost::EnergyModel,
}

impl CompiledProgram {
    /// Interns `(cycles, energy)` of one instruction into the cost tables,
    /// returning its table index. A program has only as many distinct
    /// costs as instruction classes (≤ a dozen), so `u8` never overflows.
    fn intern_cost(&mut self, ctl: &Controller, i: &Instruction) -> u8 {
        let cycles = ctl.timing_model().cycles(i);
        let energy_pj = ctl.energy_model().energy_pj(i, self.cols);
        for (idx, (&c, &e)) in self.cycles_table.iter().zip(&self.energy_table).enumerate() {
            if c == cycles && e.to_bits() == energy_pj.to_bits() {
                return idx as u8;
            }
        }
        self.cycles_table.push(cycles);
        self.energy_table.push(energy_pj);
        assert!(self.cycles_table.len() <= 256, "cost table overflow");
        (self.cycles_table.len() - 1) as u8
    }

    fn push_instr(&mut self, ctl: &Controller, i: &Instruction) -> Result<(), SramError> {
        ctl.validate_instr(i)?;
        let idx = self.intern_cost(ctl, i);
        self.instrs.push(*i);
        self.cost_idx.push(idx);
        Ok(())
    }

    fn push_range(
        &mut self,
        ctl: &Controller,
        is: &[Instruction],
    ) -> Result<InstrRange, SramError> {
        let start = self.instrs.len() as u32;
        for i in is {
            self.push_instr(ctl, i)?;
        }
        Ok((start, self.instrs.len() as u32))
    }

    fn push_ctrl(&mut self, c: Ctrl, into_body: bool) {
        if into_body {
            self.body_ctrl.push(c);
        } else {
            self.ctrl.push(c);
        }
    }

    /// Pre-aggregates one fused group's costs from its instructions.
    fn group_cost(&self, ctl: &Controller, instrs: &[Instruction]) -> GroupCost {
        let mut gc = GroupCost {
            cycles: 0,
            counts: crate::stats::InstrCounts::default(),
            energy: Vec::with_capacity(instrs.len()),
        };
        for i in instrs {
            gc.cycles += ctl.timing_model().cycles(i);
            gc.energy.push(ctl.energy_model().energy_pj(i, self.cols));
            gc.counts.record(i);
        }
        gc
    }

    /// Lowers one straight-line instruction window into the (body or
    /// top-level) control stream, fusing recognized superop patterns.
    fn lower_into(
        &mut self,
        ctl: &Controller,
        instrs: &[Instruction],
        into_body: bool,
    ) -> Result<(), SramError> {
        // Straight-line runs may only merge within this lowering call:
        // merging across a call boundary would fold one loop body's run
        // into another's and corrupt both ranges.
        let barrier = if into_body {
            self.body_ctrl.len()
        } else {
            self.ctrl.len()
        };
        let mut i = 0usize;
        while i < instrs.len() {
            let w = &instrs[i..];
            /// One fusion attempt: on a match, intern the window as the
            /// fallback range, memoize the pattern's group cost (identical
            /// for every occurrence — costs depend only on instruction
            /// shape and column count), and emit the superop control entry.
            macro_rules! fuse {
                ($matcher:ident, $len:expr, $ops:ident, $cost:ident, $ctrl:ident) => {
                    if let Some(mut op) = $matcher(w) {
                        op.fallback = self.push_range(ctl, &w[..$len])?;
                        if self.$cost.is_none() {
                            self.$cost = Some(self.group_cost(ctl, &w[..$len]));
                        }
                        self.$ops.push(op);
                        let idx = (self.$ops.len() - 1) as u32;
                        self.push_ctrl(Ctrl::$ctrl { idx }, into_body);
                        i += $len;
                        continue;
                    }
                };
            }
            // Longest-window first within each leading-instruction family:
            // `Check`-led (halve > sign-fix > select > copy), `Binary`-led
            // (add-B > sub-init > carry-save add), `Shift`-led (borrow >
            // resolve round).
            fuse!(match_halve, 7, halves, halve_cost, Halve);
            fuse!(match_signfix, 4, signfixes, signfix_cost, SignFix);
            fuse!(match_condsel, 3, condsels, condsel_cost, CondSel);
            fuse!(match_condcopy, 2, condcopies, condcopy_cost, CondCopy);
            fuse!(match_addb, 4, addbs, addb_cost, AddB);
            fuse!(match_subinit, 2, subinits, subinit_cost, SubInit);
            fuse!(
                match_borrow_round,
                3,
                borrow_rounds,
                borrow_round_cost,
                BorrowRound
            );
            fuse!(
                match_resolve_round,
                2,
                resolve_rounds,
                resolve_round_cost,
                ResolveRound
            );
            fuse!(match_csadd, 1, csadds, csadd_cost, CsAdd);
            // Generic: append to (or start) a straight-line run.
            self.push_instr(ctl, &instrs[i])?;
            let end = self.instrs.len() as u32;
            let target = if into_body {
                &mut self.body_ctrl
            } else {
                &mut self.ctrl
            };
            if target.len() > barrier {
                if let Some(Ctrl::Run { start, len }) = target.last_mut() {
                    if *start + *len == end - 1 {
                        *len += 1;
                        i += 1;
                        continue;
                    }
                }
            }
            target.push(Ctrl::Run {
                start: end - 1,
                len: 1,
            });
            i += 1;
        }
        Ok(())
    }

    fn flush_segment(
        &mut self,
        ctl: &Controller,
        segment: &mut Vec<Instruction>,
        into_body: bool,
    ) -> Result<(), SramError> {
        if segment.is_empty() {
            return Ok(());
        }
        let instrs = std::mem::take(segment);
        self.lower_into(ctl, &instrs, into_body)
    }

    fn lower_body(
        &mut self,
        ctl: &Controller,
        instrs: &[Instruction],
    ) -> Result<CtrlRange, SramError> {
        let start = self.body_ctrl.len() as u32;
        self.lower_into(ctl, instrs, true)?;
        Ok((start, self.body_ctrl.len() as u32))
    }

    /// Merges top-level runs of add-B/halve superops sharing one
    /// accumulator row set into multiplier chains, so replay borrows the
    /// rows once per modular multiplication instead of once per step.
    fn chain_pass(&mut self) {
        let old = std::mem::take(&mut self.ctrl);
        let mut out: Vec<Ctrl> = Vec::with_capacity(old.len());
        let mut i = 0usize;
        while i < old.len() {
            let Some((s, c, ts, tc)) = self.accumulator_rows(old[i]) else {
                out.push(old[i]);
                i += 1;
                continue;
            };
            let (mut b, mut m) = (None, None);
            let mut steps: Vec<ChainStep> = Vec::new();
            let mut j = i;
            while j < old.len() {
                match old[j] {
                    Ctrl::AddB { idx } => {
                        let op = &self.addbs[idx as usize];
                        if (op.sum, op.carry, op.t_sum, op.t_carry) != (s, c, ts, tc)
                            || b.is_some_and(|x| x != op.b)
                        {
                            break;
                        }
                        b = Some(op.b);
                        steps.push(ChainStep::AddB(op.pred));
                    }
                    Ctrl::Halve { idx } => {
                        let op = &self.halves[idx as usize];
                        if (op.sum, op.carry, op.t_sum, op.t_carry) != (s, c, ts, tc)
                            || m.is_some_and(|x| x != op.modulus)
                        {
                            break;
                        }
                        m = Some(op.modulus);
                        steps.push(ChainStep::Halve);
                    }
                    _ => break,
                }
                j += 1;
            }
            let chainable = j - i >= 2
                && b.is_some()
                && m.is_some()
                && distinct(&[s, c, ts, tc, b.unwrap(), m.unwrap()]);
            if chainable {
                let mut cycles = 0u64;
                let mut counts = crate::stats::InstrCounts::default();
                for step in &steps {
                    let gc = match step {
                        ChainStep::AddB(_) => self.addb_cost.as_ref().expect("cost set with op"),
                        ChainStep::Halve => self.halve_cost.as_ref().expect("cost set with op"),
                    };
                    cycles += gc.cycles;
                    counts += gc.counts;
                }
                self.chains.push(ChainOp {
                    sum: s,
                    carry: c,
                    t_sum: ts,
                    t_carry: tc,
                    b: b.unwrap(),
                    modulus: m.unwrap(),
                    steps,
                    cycles,
                    counts,
                    fallback_ops: old[i..j].to_vec(),
                });
                out.push(Ctrl::Chain {
                    idx: (self.chains.len() - 1) as u32,
                });
                i = j;
            } else {
                out.push(old[i]);
                i += 1;
            }
        }
        self.ctrl = out;
    }

    /// The `(sum, carry, t_sum, t_carry)` rows of a chainable entry.
    fn accumulator_rows(&self, c: Ctrl) -> Option<(u16, u16, u16, u16)> {
        match c {
            Ctrl::AddB { idx } => {
                let op = &self.addbs[idx as usize];
                Some((op.sum, op.carry, op.t_sum, op.t_carry))
            }
            Ctrl::Halve { idx } => {
                let op = &self.halves[idx as usize];
                Some((op.sum, op.carry, op.t_sum, op.t_carry))
            }
            _ => None,
        }
    }

    /// Number of distinct static instructions in the program (loop bodies
    /// and fused-group fallbacks counted once, plus one zero-check per
    /// loop and one row image per load).
    #[must_use]
    pub fn static_len(&self) -> usize {
        self.instrs.len() + self.loads.len() + self.loops.len()
    }

    /// How many fused superops the compiler recognized (a replay-speed
    /// diagnostic: higher is better).
    #[must_use]
    pub fn fused_ops(&self) -> usize {
        self.addbs.len() + self.halves.len() + self.resolve_rounds.len() + self.borrow_rounds.len()
    }

    /// How many multiplier chains and fused resolution loops the second
    /// fusion level produced.
    #[must_use]
    pub fn fused_chains(&self) -> usize {
        self.chains.len() + self.resolve_loops.len()
    }

    /// How many butterfly-epilogue superops the compiler fused (carry-save
    /// adds, subtract initiators, conditional selects/copies, sign-fixes)
    /// — the instruction groups that were generic before the word-engine
    /// rework.
    #[must_use]
    pub fn fused_epilogues(&self) -> usize {
        self.csadds.len()
            + self.subinits.len()
            + self.condsels.len()
            + self.condcopies.len()
            + self.signfixes.len()
    }

    /// The fused chain/loop execution strategy this program compiled to
    /// (decided once from the row width; see [`FastPathKind`]).
    #[must_use]
    pub fn fast_path_kind(&self) -> FastPathKind {
        self.fast_path
    }
}

impl Controller {
    /// Replays a compiled program: the allocation-free, validation-free,
    /// cost-precomputed hot path. Produces bit-identical array contents
    /// and bit-identical [`Stats`](crate::Stats) to emitting the same
    /// stream through [`Self::execute`].
    ///
    /// # Errors
    ///
    /// [`SramError::ProgramMismatch`] when the program was compiled for a
    /// different geometry, tile width, or cost model.
    pub fn run_compiled(&mut self, prog: &CompiledProgram) -> Result<(), SramError> {
        if prog.rows != self.rows() || prog.cols != self.cols() {
            return Err(SramError::ProgramMismatch {
                reason: "array geometry differs",
            });
        }
        if prog.tile_width != self.tile_width() {
            return Err(SramError::ProgramMismatch {
                reason: "tile width differs",
            });
        }
        if prog.timing != *self.timing_model() || prog.energy != *self.energy_model() {
            return Err(SramError::ProgramMismatch {
                reason: "cost models differ",
            });
        }
        // Implied by equal geometry; the compiled kind exists so the
        // executors never re-derive it from slice lengths per superop.
        debug_assert_eq!(prog.fast_path, self.fast_path_kind());
        for c in &prog.ctrl {
            // Control entries are whole superops, so this boundary is
            // never inside a resolution loop — the one place injected
            // corruption could stall the zero-flag convergence bound.
            self.fault_tick();
            self.exec_ctrl(prog, *c);
        }
        Ok(())
    }

    /// Replays one generic instruction range with precomputed costs. The
    /// energy adds happen in the same order as per-instruction execution
    /// (their position relative to the row updates does not affect the
    /// accumulated value), so the result stays bit-identical.
    fn run_instr_range(&mut self, prog: &CompiledProgram, range: InstrRange) {
        let (start, end) = (range.0 as usize, range.1 as usize);
        if !self.cost_accounting() {
            // Native direct execution: semantic work only, no cost-table
            // reads (`apply_instr` advances the native clock per instruction).
            for instr in &prog.instrs[start..end] {
                self.apply_instr(instr);
            }
            return;
        }
        let mut cycles = 0u64;
        let mut e_acc = self.stats_energy();
        for (instr, &ci) in prog.instrs[start..end]
            .iter()
            .zip(&prog.cost_idx[start..end])
        {
            e_acc += prog.energy_table[usize::from(ci)];
            cycles += prog.cycles_table[usize::from(ci)];
            self.apply_instr(instr);
        }
        self.set_stats_energy(e_acc);
        self.add_cost(cycles, 0.0);
    }

    fn exec_ctrl(&mut self, prog: &CompiledProgram, c: Ctrl) {
        match c {
            Ctrl::Run { start, len } => self.run_instr_range(prog, (start, start + len)),
            Ctrl::AddB { idx } => {
                let op = &prog.addbs[idx as usize];
                if self.exec_addb(op) {
                    self.apply_group_cost(prog.addb_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::Halve { idx } => {
                let op = &prog.halves[idx as usize];
                if self.exec_halve(op) {
                    self.apply_group_cost(prog.halve_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::ResolveRound { idx } => {
                let op = &prog.resolve_rounds[idx as usize];
                if self.exec_resolve_round(op) {
                    self.apply_group_cost(
                        prog.resolve_round_cost.as_ref().expect("cost set with op"),
                    );
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::CsAdd { idx } => {
                let op = &prog.csadds[idx as usize];
                if self.exec_csadd(op) {
                    self.apply_group_cost(prog.csadd_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::SubInit { idx } => {
                let op = &prog.subinits[idx as usize];
                if self.exec_subinit(op) {
                    self.apply_group_cost(prog.subinit_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::CondSel { idx } => {
                let op = &prog.condsels[idx as usize];
                if self.exec_condsel(op) {
                    self.apply_group_cost(prog.condsel_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::CondCopy { idx } => {
                let op = &prog.condcopies[idx as usize];
                if self.exec_condcopy(op) {
                    self.apply_group_cost(prog.condcopy_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::SignFix { idx } => {
                let op = &prog.signfixes[idx as usize];
                if self.exec_signfix(op) {
                    self.apply_group_cost(prog.signfix_cost.as_ref().expect("cost set with op"));
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::BorrowRound { idx } => {
                let op = &prog.borrow_rounds[idx as usize];
                if self.exec_borrow_round(op) {
                    self.apply_group_cost(
                        prog.borrow_round_cost.as_ref().expect("cost set with op"),
                    );
                } else {
                    self.run_instr_range(prog, op.fallback);
                }
            }
            Ctrl::Chain { idx } => {
                let op = &prog.chains[idx as usize];
                if self.exec_chain(
                    op.sum, op.carry, op.t_sum, op.t_carry, op.b, op.modulus, &op.steps,
                ) {
                    self.add_cost(op.cycles, 0.0);
                    self.add_counts(op.counts);
                    // Energy still accumulates value by value (shared,
                    // cache-hot per-pattern tables) for bit-identity. A
                    // chain always contains both step kinds (the chain
                    // pass requires a b-row and a modulus row), so both
                    // costs must have been interned — panic loudly if a
                    // refactor ever breaks that invariant rather than
                    // silently undercounting energy.
                    let addb_energy: &[f64] = &prog
                        .addb_cost
                        .as_ref()
                        .expect("chain implies interned add-B cost")
                        .energy;
                    let halve_energy: &[f64] = &prog
                        .halve_cost
                        .as_ref()
                        .expect("chain implies interned halve cost")
                        .energy;
                    for step in &op.steps {
                        self.add_energy_seq(match step {
                            ChainStep::AddB(_) => addb_energy,
                            ChainStep::Halve => halve_energy,
                        });
                    }
                } else {
                    for c in &op.fallback_ops {
                        self.exec_ctrl(prog, *c);
                    }
                }
            }
            Ctrl::ResolveLoop { idx } => {
                let op = &prog.resolve_loops[idx as usize];
                let done = self.exec_resolve_loop(
                    op.s,
                    op.c,
                    op.max_checks,
                    prog.cycles_table[usize::from(op.check_cost)],
                    prog.energy_table[usize::from(op.check_cost)],
                    prog.resolve_round_cost
                        .as_ref()
                        .expect("loop body is a round"),
                );
                if done.is_none() {
                    self.exec_ctrl(
                        prog,
                        Ctrl::Loop {
                            idx: op.fallback_loop,
                        },
                    );
                }
            }
            Ctrl::BorrowLoop { idx } => {
                let op = &prog.borrow_loops[idx as usize];
                let done = self.exec_borrow_loop(
                    op.live,
                    op.other,
                    op.t,
                    op.max_checks,
                    prog.cycles_table[usize::from(op.check_cost)],
                    prog.energy_table[usize::from(op.check_cost)],
                    prog.borrow_round_cost
                        .as_ref()
                        .expect("loop body is a round"),
                );
                match done {
                    Some(bodies) => {
                        if bodies % 2 == 1 {
                            let (start, end) = op.epilogue;
                            for bc in start..end {
                                self.exec_ctrl(prog, prog.body_ctrl[bc as usize]);
                            }
                        }
                    }
                    None => self.exec_ctrl(
                        prog,
                        Ctrl::Loop {
                            idx: op.fallback_loop,
                        },
                    ),
                }
            }
            Ctrl::Load { idx } => {
                let load = &prog.loads[idx as usize];
                self.load_data_row_ref(load.row, &load.data);
            }
            Ctrl::Loop { idx } => {
                let lp = &prog.loops[idx as usize];
                let check = Instruction::CheckZero { src: lp.src };
                let (ccyc, cen) = (
                    prog.cycles_table[usize::from(lp.check_cost)],
                    prog.energy_table[usize::from(lp.check_cost)],
                );
                let mut bodies = 0usize;
                for k in 0..lp.max_checks {
                    self.add_cost(ccyc, cen);
                    self.apply_instr(&check);
                    if self.zero_flag() {
                        break;
                    }
                    let (start, end) = if k % 2 == 0 { lp.even } else { lp.odd };
                    for bc in start..end {
                        // Loop bodies never contain loops or loads.
                        self.exec_ctrl(prog, prog.body_ctrl[bc as usize]);
                    }
                    bodies += 1;
                }
                debug_assert!(
                    self.zero_flag(),
                    "resolution loop must converge within max_checks"
                );
                if bodies % 2 == 1 {
                    let (start, end) = lp.epilogue;
                    for bc in start..end {
                        self.exec_ctrl(prog, prog.body_ctrl[bc as usize]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::SramArray;
    use crate::isa::{BitOp, PredMode, ShiftDir};

    fn controller() -> Controller {
        Controller::new(SramArray::new(8, 64).unwrap(), 16).unwrap()
    }

    fn row_with(words: &[u64]) -> BitRow {
        let mut r = BitRow::zero(64);
        for (t, &v) in words.iter().enumerate() {
            r.set_tile_word(t, 16, v);
        }
        r
    }

    fn sample_stream(sink: &mut impl InstrSink) -> Result<(), SramError> {
        sink.load_row(RowAddr(2), &row_with(&[7, 0, 0xFFFF, 3]))?;
        sink.emit(Instruction::Binary {
            dst: RowAddr(3),
            op: BitOp::And,
            src0: RowAddr(0),
            src1: RowAddr(1),
            dst2: Some((RowAddr(4), BitOp::Xor)),
            shift: None,
            pred: PredMode::Always,
        })?;
        sink.emit(Instruction::Check {
            src: RowAddr(0),
            bit: 0,
        })?;
        sink.emit(Instruction::Unary {
            dst: RowAddr(5),
            src: RowAddr(2),
            kind: crate::isa::UnaryKind::Copy,
            pred: PredMode::IfSet,
        })?;
        // A resolution-style loop: shift row 4 left until it drains.
        let body = [Instruction::Shift {
            dst: RowAddr(4),
            src: RowAddr(4),
            dir: ShiftDir::Left,
            masked: true,
            pred: PredMode::Always,
        }];
        sink.zero_loop(ZeroLoopSpec {
            src: RowAddr(4),
            even_body: &body,
            odd_body: &body,
            max_checks: 17,
            odd_epilogue: &[],
        })
    }

    fn loaded(mut ctl: Controller) -> Controller {
        ctl.load_data_row(0, row_with(&[0b1101, 0b0010, 5, 9]));
        ctl.load_data_row(1, row_with(&[0b1011, 0b0110, 5, 0]));
        ctl
    }

    #[test]
    fn replay_matches_emission_rows_and_stats() {
        let mut emitted = loaded(controller());
        sample_stream(&mut emitted).unwrap();

        let mut replayed = loaded(controller());
        let mut rec = Recorder::new();
        sample_stream(&mut rec).unwrap();
        let prog = rec.finish().compile(&replayed).unwrap();
        replayed.run_compiled(&prog).unwrap();

        for r in 0..8 {
            assert_eq!(emitted.peek_row(r), replayed.peek_row(r), "row {r}");
        }
        assert_eq!(emitted.stats(), replayed.stats());
        assert_eq!(
            emitted.stats().energy_pj.to_bits(),
            replayed.stats().energy_pj.to_bits()
        );
    }

    #[test]
    fn zero_loop_executes_dynamically() {
        // Data with different drain times still produces the right result:
        // the loop runs until the *slowest* tile drains (shared stream).
        let mut ctl = controller();
        ctl.load_data_row(4, row_with(&[1, 0b1000, 0, 0]));
        let body = [Instruction::Shift {
            dst: RowAddr(4),
            src: RowAddr(4),
            dir: ShiftDir::Left,
            masked: true,
            pred: PredMode::Always,
        }];
        ctl.zero_loop(ZeroLoopSpec {
            src: RowAddr(4),
            even_body: &body,
            odd_body: &body,
            max_checks: 17,
            odd_epilogue: &[],
        })
        .unwrap();
        assert!(ctl.peek_row(4).is_zero());
        // 16-bit tiles: the slowest bit (bit 0 of tile 0) needs 16 shifts
        // to drain; 17 checks total (the last sees zero).
        assert_eq!(ctl.stats().counts.shift, 16);
        assert_eq!(ctl.stats().counts.check_zero, 17);
    }

    #[test]
    fn odd_epilogue_runs_on_odd_parity() {
        // One body execution (odd) → epilogue runs; drained data (zero
        // checks) → no bodies, no epilogue.
        let epilogue = [Instruction::Unary {
            dst: RowAddr(6),
            src: RowAddr(0),
            kind: crate::isa::UnaryKind::Copy,
            pred: PredMode::Always,
        }];
        let body = [Instruction::Unary {
            dst: RowAddr(4),
            src: RowAddr(4),
            kind: crate::isa::UnaryKind::Zero,
            pred: PredMode::Always,
        }];
        let mut ctl = controller();
        ctl.load_data_row(0, row_with(&[0xBEEF, 0, 0, 0]));
        ctl.load_data_row(4, row_with(&[1, 0, 0, 0]));
        ctl.zero_loop(ZeroLoopSpec {
            src: RowAddr(4),
            even_body: &body,
            odd_body: &body,
            max_checks: 17,
            odd_epilogue: &epilogue,
        })
        .unwrap();
        assert_eq!(ctl.peek_row(6).tile_word(0, 16), 0xBEEF, "epilogue ran");

        let mut ctl = controller();
        ctl.load_data_row(0, row_with(&[0xBEEF, 0, 0, 0]));
        ctl.zero_loop(ZeroLoopSpec {
            src: RowAddr(4),
            even_body: &body,
            odd_body: &body,
            max_checks: 17,
            odd_epilogue: &epilogue,
        })
        .unwrap();
        assert!(ctl.peek_row(6).is_zero(), "no bodies, no epilogue");
    }

    #[test]
    fn compile_validates_addresses() {
        let ctl = controller();
        let mut rec = Recorder::new();
        rec.emit(Instruction::CheckZero { src: RowAddr(99) })
            .unwrap();
        assert!(matches!(
            rec.finish().compile(&ctl),
            Err(SramError::RowOutOfRange { row: 99, .. })
        ));
        let mut rec = Recorder::new();
        rec.emit(Instruction::Check {
            src: RowAddr(0),
            bit: 16,
        })
        .unwrap();
        assert!(matches!(
            rec.finish().compile(&ctl),
            Err(SramError::CheckBitOutOfRange { .. })
        ));
    }

    #[test]
    fn replay_rejects_mismatched_controller() {
        let ctl = controller();
        let mut rec = Recorder::new();
        rec.emit(Instruction::MaskAll).unwrap();
        let prog = rec.finish().compile(&ctl).unwrap();

        let mut other = Controller::new(SramArray::new(16, 64).unwrap(), 16).unwrap();
        assert!(matches!(
            other.run_compiled(&prog),
            Err(SramError::ProgramMismatch { .. })
        ));
        let mut other = Controller::new(SramArray::new(8, 64).unwrap(), 32).unwrap();
        assert!(matches!(
            other.run_compiled(&prog),
            Err(SramError::ProgramMismatch { .. })
        ));
        let mut other = controller();
        other.set_timing_model(crate::cost::TimingModel::conservative());
        assert!(matches!(
            other.run_compiled(&prog),
            Err(SramError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn static_len_counts_loop_bodies_once() {
        let ctl = controller();
        let mut rec = Recorder::new();
        sample_stream(&mut rec).unwrap();
        let prog = rec.finish().compile(&ctl).unwrap();
        // 1 load + 3 straight instrs + (1 check + even body 1 + odd body 1)
        // for the loop (each body stored once).
        assert_eq!(prog.static_len(), 7);
    }
}
