//! Area and frequency models for the SRAM subarray at 45 nm.
//!
//! The paper reports, for a 256×256 BP-NTT subarray at 45 nm: 0.063 mm²
//! total area, **< 2% overhead** versus a conventional subarray, and a
//! maximum clock of 3.8 GHz (Table I). These models reproduce those numbers
//! from a component-level breakdown and extrapolate to other geometries for
//! the array-scaling studies (the "larger subarray" remark under Fig. 8(b)).

/// Array geometry in rows × columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    /// Wordlines.
    pub rows: usize,
    /// Bitline pairs.
    pub cols: usize,
}

impl ArrayGeometry {
    /// The paper's design point, sized after an Arm Cortex-M0+-class MCU
    /// cache subarray.
    #[must_use]
    pub fn paper_256x256() -> Self {
        ArrayGeometry {
            rows: 256,
            cols: 256,
        }
    }

    /// Total bit cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// Component-level area breakdown in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// 6T cell matrix.
    pub cells_mm2: f64,
    /// Row periphery: the two wordline decoders + drivers (dual-row
    /// activation needs two decoders, Fig. 4(c)).
    pub row_periphery_mm2: f64,
    /// Column periphery: precharge, sense amplifiers, write drivers.
    pub col_periphery_mm2: f64,
    /// Timing/control logic of a conventional subarray.
    pub control_mm2: f64,
    /// BP-NTT additions: NOR+inverter for XOR/OR, shift MUX + latch,
    /// predicate latch per sense amplifier.
    pub compute_extra_mm2: f64,
}

impl AreaBreakdown {
    /// Area of the unmodified, conventional subarray.
    #[must_use]
    pub fn conventional_mm2(&self) -> f64 {
        self.cells_mm2 + self.row_periphery_mm2 + self.col_periphery_mm2 + self.control_mm2
    }

    /// Total area including the compute modifications.
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        self.conventional_mm2() + self.compute_extra_mm2
    }

    /// Compute-modification overhead as a fraction of the conventional
    /// array (the paper claims < 2%).
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        self.compute_extra_mm2 / self.conventional_mm2()
    }
}

/// Area model with 45 nm component constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// One 6T cell (µm²). 0.38 µm² is a typical published 45 nm value.
    pub cell_um2: f64,
    /// Per-row driver + decoder slice for each of the two decoders (µm²).
    pub row_driver_um2: f64,
    /// Per-column precharge + SA + write driver (µm²).
    pub col_periphery_um2: f64,
    /// Fixed control/timing block (µm²).
    pub control_um2: f64,
    /// Per-column BP-NTT additions (µm²): extra NOR/inverter, shift MUX,
    /// latch, predicate latch.
    pub compute_extra_um2_per_col: f64,
}

impl AreaModel {
    /// 45 nm constants, calibrated so the 256×256 design point totals the
    /// paper's 0.063 mm² with < 2% compute overhead.
    #[must_use]
    pub fn cmos_45nm() -> Self {
        AreaModel {
            cell_um2: 0.38,
            row_driver_um2: 30.0,
            col_periphery_um2: 70.0,
            control_um2: 3800.0,
            compute_extra_um2_per_col: 4.5,
        }
    }

    /// Breakdown for a geometry.
    #[must_use]
    pub fn breakdown(&self, geom: ArrayGeometry) -> AreaBreakdown {
        let to_mm2 = 1e-6;
        AreaBreakdown {
            cells_mm2: geom.cells() as f64 * self.cell_um2 * to_mm2,
            row_periphery_mm2: 2.0 * geom.rows as f64 * self.row_driver_um2 * to_mm2,
            col_periphery_mm2: geom.cols as f64 * self.col_periphery_um2 * to_mm2,
            control_mm2: self.control_um2 * to_mm2,
            compute_extra_mm2: geom.cols as f64 * self.compute_extra_um2_per_col * to_mm2,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::cmos_45nm()
    }
}

/// Critical-path model for the subarray clock.
///
/// `t = t_fixed + t_dec·log₂(rows) + t_wl·cols + t_bl·rows + t_sa`
/// (decoder depth, wordline RC, bitline RC, sense time), calibrated to
/// 3.8 GHz at 256×256 / 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyModel {
    /// Fixed clocking overhead (ps).
    pub t_fixed_ps: f64,
    /// Per-decoder-level delay (ps).
    pub t_dec_ps: f64,
    /// Wordline RC per column (ps).
    pub t_wl_ps_per_col: f64,
    /// Bitline RC per row (ps).
    pub t_bl_ps_per_row: f64,
    /// Sense-amplifier resolution (ps).
    pub t_sa_ps: f64,
}

impl FrequencyModel {
    /// 45 nm constants (3.8 GHz at the 256×256 design point).
    #[must_use]
    pub fn cmos_45nm() -> Self {
        FrequencyModel {
            t_fixed_ps: 29.6,
            t_dec_ps: 6.25,
            t_wl_ps_per_col: 0.25,
            t_bl_ps_per_row: 0.35,
            t_sa_ps: 30.0,
        }
    }

    /// Critical-path delay in picoseconds.
    #[must_use]
    pub fn delay_ps(&self, geom: ArrayGeometry) -> f64 {
        self.t_fixed_ps
            + self.t_dec_ps * (geom.rows as f64).log2()
            + self.t_wl_ps_per_col * geom.cols as f64
            + self.t_bl_ps_per_row * geom.rows as f64
            + self.t_sa_ps
    }

    /// Maximum clock frequency in hertz.
    #[must_use]
    pub fn f_max_hz(&self, geom: ArrayGeometry) -> f64 {
        1e12 / self.delay_ps(geom)
    }
}

impl Default for FrequencyModel {
    fn default() -> Self {
        FrequencyModel::cmos_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_area() {
        let b = AreaModel::cmos_45nm().breakdown(ArrayGeometry::paper_256x256());
        let total = b.total_mm2();
        assert!(
            (total - 0.063).abs() < 0.002,
            "total area {total:.4} mm² should be ≈0.063 mm² (Table I)"
        );
        assert!(
            b.overhead_fraction() < 0.02,
            "compute overhead {:.3}% must stay under the paper's 2%",
            b.overhead_fraction() * 100.0
        );
        assert!(
            b.overhead_fraction() > 0.005,
            "overhead should be nonzero and visible"
        );
    }

    #[test]
    fn paper_design_point_frequency() {
        let f = FrequencyModel::cmos_45nm().f_max_hz(ArrayGeometry::paper_256x256());
        assert!(
            (f - 3.8e9).abs() / 3.8e9 < 0.01,
            "f_max {:.3} GHz should be ≈3.8 GHz (Table I)",
            f / 1e9
        );
    }

    #[test]
    fn bigger_arrays_are_slower_and_bigger() {
        let fm = FrequencyModel::cmos_45nm();
        let am = AreaModel::cmos_45nm();
        let small = ArrayGeometry {
            rows: 128,
            cols: 128,
        };
        let big = ArrayGeometry {
            rows: 512,
            cols: 512,
        };
        assert!(fm.f_max_hz(small) > fm.f_max_hz(ArrayGeometry::paper_256x256()));
        assert!(fm.f_max_hz(big) < fm.f_max_hz(ArrayGeometry::paper_256x256()));
        assert!(am.breakdown(big).total_mm2() > 4.0 * am.breakdown(small).total_mm2());
    }
}
