//! The BP-NTT instruction set and its binary encoding.
//!
//! Fig. 4(d) of the paper defines four instruction classes — `Check`,
//! `Unary`, `Shift`, `Binary` — issued from a repurposed command/control
//! subarray. This module reproduces that ISA, extended with the three
//! facilities the paper's dataflow implies but does not spell out
//! (`DESIGN.md` D2/D3):
//!
//! * **per-tile predication** — `Check` latches one bit per tile (the
//!   "implicit compare" of Algorithm 2 line 11); later instructions can be
//!   gated on it;
//! * **zero detection** — `CheckZero` wire-ORs a row's sense amplifiers so
//!   carry-resolution loops can terminate early;
//! * **static tile masks** — `MaskTiles` enables SIMD butterflies across
//!   tiles when one polynomial spans several tiles (Fig. 8(b) workloads).
//!
//! Instructions encode to a fixed 64-bit word (the paper packs into ~34
//! bits for a 256-row array; we widen the row fields to 10 bits so array
//! scaling experiments fit the same format).

use crate::error::SramError;

/// A wordline (row) address.
///
/// # Example
///
/// ```
/// let r = bpntt_sram::RowAddr(3);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr(pub u16);

impl RowAddr {
    /// The row index as a `usize`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

/// Boolean sense-amplifier output selected for write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitOp {
    /// Bitline AND of the two activated rows.
    And,
    /// OR (inverted NOR).
    Or,
    /// XOR (AND and NOR combined, Fig. 3(b)).
    Xor,
    /// The native complementary-bitline NOR.
    Nor,
}

/// Direction of a 1-bit shift (left = toward the tile MSB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// Toward higher columns (×2 within a tile).
    Left,
    /// Toward lower columns (÷2 within a tile).
    Right,
}

/// Per-tile predicate gating of a write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredMode {
    /// Write in every (mask-enabled) tile.
    #[default]
    Always,
    /// Write only in tiles whose predicate latch is set.
    IfSet,
    /// Write only in tiles whose predicate latch is clear.
    IfClear,
}

/// Source transformation of a `Unary` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryKind {
    /// Plain copy (bitline sense).
    Copy,
    /// Complement copy (complementary-bitline sense).
    Not,
    /// Write all zeros (write drivers only; no source row is read).
    Zero,
}

/// One BP-NTT instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Sense tile-relative column `bit` of row `src` and latch it as each
    /// tile's predicate (paper: the "implicit compare" / LSB check).
    Check {
        /// Row to sense.
        src: RowAddr,
        /// Tile-relative bit position (0 = tile LSB).
        bit: u16,
    },
    /// Sense row `src` and set the global zero flag when every column reads
    /// zero (wired-OR across sense amplifiers).
    CheckZero {
        /// Row to sense.
        src: RowAddr,
    },
    /// Enable write-back only in tiles `t` with `(t >> stride_log2) & 1 ==
    /// phase` (SIMD grouping for cross-tile butterflies).
    MaskTiles {
        /// log₂ of the pairing distance in tiles.
        stride_log2: u8,
        /// Which half of each pair is enabled.
        phase: bool,
    },
    /// Re-enable write-back in every tile.
    MaskAll,
    /// `dst ← f(src)` for `f ∈ {copy, not, zero}`.
    Unary {
        /// Destination row.
        dst: RowAddr,
        /// Source row (ignored for [`UnaryKind::Zero`]).
        src: RowAddr,
        /// The transformation.
        kind: UnaryKind,
        /// Predicate gating.
        pred: PredMode,
    },
    /// `dst ← src shifted by one bit`.
    Shift {
        /// Destination row.
        dst: RowAddr,
        /// Source row (may equal `dst`).
        src: RowAddr,
        /// Shift direction.
        dir: ShiftDir,
        /// Inject zero at tile boundaries instead of letting bits cross.
        masked: bool,
        /// Predicate gating.
        pred: PredMode,
    },
    /// Dual-row activation: sense rows `src0`/`src1`, write `op`'s result
    /// to `dst` (optionally shifted by one bit on the way through the
    /// sense-amp latch) and optionally a second boolean function of the
    /// *same* activation to `dst2` — this is how `c1, s1 = {A&B, A⊕B}`
    /// costs a single step in the paper's Fig. 6.
    Binary {
        /// Primary destination row.
        dst: RowAddr,
        /// Boolean function written to `dst`.
        op: BitOp,
        /// First activated row.
        src0: RowAddr,
        /// Second activated row.
        src1: RowAddr,
        /// Optional second write-back of the same activation.
        dst2: Option<(RowAddr, BitOp)>,
        /// Optional 1-bit shift applied to the primary result
        /// (`(direction, masked)`).
        shift: Option<(ShiftDir, bool)>,
        /// Predicate gating (applies to both write-backs).
        pred: PredMode,
    },
}

// ---- binary encoding -----------------------------------------------------

const OP_CHECK: u64 = 0;
const OP_CHECKZERO: u64 = 1;
const OP_MASKTILES: u64 = 2;
const OP_MASKALL: u64 = 3;
const OP_UNARY: u64 = 4;
const OP_SHIFT: u64 = 5;
const OP_BINARY: u64 = 6;

fn bitop_code(op: BitOp) -> u64 {
    match op {
        BitOp::And => 0,
        BitOp::Or => 1,
        BitOp::Xor => 2,
        BitOp::Nor => 3,
    }
}

fn bitop_from(code: u64) -> BitOp {
    match code & 3 {
        0 => BitOp::And,
        1 => BitOp::Or,
        2 => BitOp::Xor,
        _ => BitOp::Nor,
    }
}

fn pred_code(p: PredMode) -> u64 {
    match p {
        PredMode::Always => 0,
        PredMode::IfSet => 1,
        PredMode::IfClear => 2,
    }
}

fn pred_from(code: u64) -> Result<PredMode, SramError> {
    match code & 3 {
        0 => Ok(PredMode::Always),
        1 => Ok(PredMode::IfSet),
        2 => Ok(PredMode::IfClear),
        _ => Err(SramError::ReservedBits { word: code }),
    }
}

impl Instruction {
    /// Encodes the instruction into its 64-bit control word.
    ///
    /// Field layout (LSB first): opcode\[3:0\], primary row\[13:4\],
    /// src0\[23:14\], src1\[33:24\], op\[35:34\], pred\[37:36\],
    /// shift-present\[38\], shift-dir\[39\], shift-masked\[40\],
    /// dst2-present\[41\], dst2\[51:42\], dst2-op\[53:52\],
    /// unary-kind\[55:54\], check-bit / mask fields\[63:56\].
    #[must_use]
    pub fn encode(&self) -> u64 {
        match *self {
            Instruction::Check { src, bit } => {
                OP_CHECK | (u64::from(src.0) << 4) | (u64::from(bit) << 56)
            }
            Instruction::CheckZero { src } => OP_CHECKZERO | (u64::from(src.0) << 4),
            Instruction::MaskTiles { stride_log2, phase } => {
                OP_MASKTILES | (u64::from(stride_log2) << 56) | (u64::from(phase) << 62)
            }
            Instruction::MaskAll => OP_MASKALL,
            Instruction::Unary {
                dst,
                src,
                kind,
                pred,
            } => {
                let k = match kind {
                    UnaryKind::Copy => 0u64,
                    UnaryKind::Not => 1,
                    UnaryKind::Zero => 2,
                };
                OP_UNARY
                    | (u64::from(dst.0) << 4)
                    | (u64::from(src.0) << 14)
                    | (pred_code(pred) << 36)
                    | (k << 54)
            }
            Instruction::Shift {
                dst,
                src,
                dir,
                masked,
                pred,
            } => {
                OP_SHIFT
                    | (u64::from(dst.0) << 4)
                    | (u64::from(src.0) << 14)
                    | (pred_code(pred) << 36)
                    | (u64::from(dir == ShiftDir::Right) << 39)
                    | (u64::from(masked) << 40)
            }
            Instruction::Binary {
                dst,
                op,
                src0,
                src1,
                dst2,
                shift,
                pred,
            } => {
                let mut w = OP_BINARY
                    | (u64::from(dst.0) << 4)
                    | (u64::from(src0.0) << 14)
                    | (u64::from(src1.0) << 24)
                    | (bitop_code(op) << 34)
                    | (pred_code(pred) << 36);
                if let Some((dir, masked)) = shift {
                    w |= 1 << 38;
                    w |= u64::from(dir == ShiftDir::Right) << 39;
                    w |= u64::from(masked) << 40;
                }
                if let Some((d2, op2)) = dst2 {
                    w |= 1 << 41;
                    w |= u64::from(d2.0) << 42;
                    w |= bitop_code(op2) << 52;
                }
                w
            }
        }
    }

    /// Decodes a 64-bit control word.
    ///
    /// # Errors
    ///
    /// [`SramError::BadOpcode`] for unknown opcodes and
    /// [`SramError::ReservedBits`] for malformed fields.
    pub fn decode(word: u64) -> Result<Self, SramError> {
        let opcode = word & 0xF;
        let row = |shift: u32| RowAddr(((word >> shift) & 0x3FF) as u16);
        match opcode {
            OP_CHECK => Ok(Instruction::Check {
                src: row(4),
                bit: ((word >> 56) & 0xFF) as u16,
            }),
            OP_CHECKZERO => Ok(Instruction::CheckZero { src: row(4) }),
            OP_MASKTILES => Ok(Instruction::MaskTiles {
                stride_log2: ((word >> 56) & 0x3F) as u8,
                phase: (word >> 62) & 1 == 1,
            }),
            OP_MASKALL => Ok(Instruction::MaskAll),
            OP_UNARY => {
                let kind = match (word >> 54) & 3 {
                    0 => UnaryKind::Copy,
                    1 => UnaryKind::Not,
                    2 => UnaryKind::Zero,
                    _ => return Err(SramError::ReservedBits { word }),
                };
                Ok(Instruction::Unary {
                    dst: row(4),
                    src: row(14),
                    kind,
                    pred: pred_from(word >> 36)?,
                })
            }
            OP_SHIFT => Ok(Instruction::Shift {
                dst: row(4),
                src: row(14),
                dir: if (word >> 39) & 1 == 1 {
                    ShiftDir::Right
                } else {
                    ShiftDir::Left
                },
                masked: (word >> 40) & 1 == 1,
                pred: pred_from(word >> 36)?,
            }),
            OP_BINARY => {
                let shift = if (word >> 38) & 1 == 1 {
                    Some((
                        if (word >> 39) & 1 == 1 {
                            ShiftDir::Right
                        } else {
                            ShiftDir::Left
                        },
                        (word >> 40) & 1 == 1,
                    ))
                } else {
                    None
                };
                let dst2 = if (word >> 41) & 1 == 1 {
                    Some((
                        RowAddr(((word >> 42) & 0x3FF) as u16),
                        bitop_from(word >> 52),
                    ))
                } else {
                    None
                };
                Ok(Instruction::Binary {
                    dst: row(4),
                    op: bitop_from(word >> 34),
                    src0: row(14),
                    src1: row(24),
                    dst2,
                    shift,
                    pred: pred_from(word >> 36)?,
                })
            }
            other => Err(SramError::BadOpcode {
                opcode: other as u8,
            }),
        }
    }

    /// True for the instruction kinds that move a value by one column
    /// (explicit `Shift` or a fused shift on a `Binary`) — the quantity the
    /// paper's "half the shifts of bit-serial designs" claim counts.
    #[must_use]
    pub fn is_shift(&self) -> bool {
        matches!(self, Instruction::Shift { .. })
            || matches!(self, Instruction::Binary { shift: Some(_), .. })
    }
}

/// A straight-line instruction sequence.
///
/// Dynamic control flow (carry-resolution loops) lives in the engine that
/// issues programs; a `Program` is the unit of static cost analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instruction>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, i: Instruction) {
        self.instrs.push(i);
    }

    /// The instructions in order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Encodes every instruction (the CTRL/CMD subarray image).
    #[must_use]
    pub fn encode(&self) -> Vec<u64> {
        self.instrs.iter().map(Instruction::encode).collect()
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            instrs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Check {
                src: RowAddr(250),
                bit: 0,
            },
            Instruction::Check {
                src: RowAddr(3),
                bit: 31,
            },
            Instruction::CheckZero { src: RowAddr(251) },
            Instruction::MaskTiles {
                stride_log2: 3,
                phase: true,
            },
            Instruction::MaskAll,
            Instruction::Unary {
                dst: RowAddr(1),
                src: RowAddr(2),
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
            Instruction::Unary {
                dst: RowAddr(9),
                src: RowAddr(9),
                kind: UnaryKind::Not,
                pred: PredMode::IfSet,
            },
            Instruction::Unary {
                dst: RowAddr(0),
                src: RowAddr(0),
                kind: UnaryKind::Zero,
                pred: PredMode::IfClear,
            },
            Instruction::Shift {
                dst: RowAddr(7),
                src: RowAddr(7),
                dir: ShiftDir::Left,
                masked: false,
                pred: PredMode::Always,
            },
            Instruction::Shift {
                dst: RowAddr(8),
                src: RowAddr(7),
                dir: ShiftDir::Right,
                masked: true,
                pred: PredMode::IfSet,
            },
            Instruction::Binary {
                dst: RowAddr(100),
                op: BitOp::And,
                src0: RowAddr(101),
                src1: RowAddr(102),
                dst2: Some((RowAddr(103), BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
            Instruction::Binary {
                dst: RowAddr(513),
                op: BitOp::Xor,
                src0: RowAddr(514),
                src1: RowAddr(515),
                dst2: Some((RowAddr(516), BitOp::And)),
                shift: Some((ShiftDir::Right, false)),
                pred: PredMode::IfSet,
            },
            Instruction::Binary {
                dst: RowAddr(1),
                op: BitOp::Or,
                src0: RowAddr(2),
                src1: RowAddr(3),
                dst2: None,
                shift: Some((ShiftDir::Left, true)),
                pred: PredMode::IfClear,
            },
            Instruction::Binary {
                dst: RowAddr(4),
                op: BitOp::Nor,
                src0: RowAddr(5),
                src1: RowAddr(6),
                dst2: None,
                shift: None,
                pred: PredMode::Always,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for i in sample_instructions() {
            let w = i.encode();
            let back = Instruction::decode(w).unwrap();
            assert_eq!(back, i, "word {w:#018x}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(
            Instruction::decode(0xF),
            Err(SramError::BadOpcode { opcode: 15 })
        ));
        assert!(matches!(
            Instruction::decode(7),
            Err(SramError::BadOpcode { opcode: 7 })
        ));
    }

    #[test]
    fn is_shift_classifier() {
        let shift = Instruction::Shift {
            dst: RowAddr(0),
            src: RowAddr(0),
            dir: ShiftDir::Left,
            masked: false,
            pred: PredMode::Always,
        };
        assert!(shift.is_shift());
        let fused = Instruction::Binary {
            dst: RowAddr(0),
            op: BitOp::Xor,
            src0: RowAddr(1),
            src1: RowAddr(2),
            dst2: None,
            shift: Some((ShiftDir::Right, false)),
            pred: PredMode::Always,
        };
        assert!(fused.is_shift());
        let plain = Instruction::MaskAll;
        assert!(!plain.is_shift());
    }

    #[test]
    fn program_encoding_length() {
        let p: Program = sample_instructions().into_iter().collect();
        assert_eq!(p.encode().len(), p.len());
        assert!(!p.is_empty());
    }
}
