//! Timing and energy models for in-SRAM instructions.
//!
//! The paper extracts cycle time, energy, and area from PyMTL3 + OpenRAM +
//! Synopsys DC + Cadence Innovus at 45 nm; those tools only feed scalar
//! constants into the evaluation. We expose the same scalars as documented
//! model parameters, **calibrated once at the paper's design point**
//! (256×256 array, 16-bit coefficients, 256-point NTT → 61.9 µs @ 3.8 GHz
//! and 69.4 nJ per batch; see `EXPERIMENTS.md` for the calibration run) and
//! derive every sweep and comparison from simulated instruction counts.

use crate::isa::Instruction;

/// Cycles charged per instruction class.
///
/// The default ("paper") model charges one cycle per instruction: a
/// dual-row activation, its sense, and up to two latched write-backs
/// complete within one clock at the OpenRAM-extracted 3.8 GHz — this is the
/// step counting of the paper's Fig. 6 walk-through. The conservative model
/// charges activation and each write-back separately for sensitivity
/// studies (the ablation harness sweeps both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingModel {
    /// `Check` predicate latch.
    pub check: u64,
    /// `CheckZero` wired-OR sense.
    pub check_zero: u64,
    /// `MaskTiles` / `MaskAll` configuration write.
    pub mask: u64,
    /// `Unary` copy/complement/clear.
    pub unary: u64,
    /// Explicit `Shift`.
    pub shift: u64,
    /// `Binary` dual-row activation with one write-back.
    pub binary: u64,
    /// Extra cycles for a `Binary`'s second write-back.
    pub second_writeback: u64,
    /// Loading / storing one data row over the normal SRAM port.
    pub row_io: u64,
}

impl TimingModel {
    /// The paper's single-cycle-per-step model (Fig. 6 step counting).
    #[must_use]
    pub fn paper() -> Self {
        TimingModel {
            check: 1,
            check_zero: 1,
            mask: 1,
            unary: 1,
            shift: 1,
            binary: 1,
            second_writeback: 0,
            row_io: 1,
        }
    }

    /// A pessimistic model: every write-back is a separate cycle after the
    /// activation (2 cycles for unary/shift/binary, +1 per extra
    /// write-back). Used by the ablation benches to bound the claims.
    #[must_use]
    pub fn conservative() -> Self {
        TimingModel {
            check: 1,
            check_zero: 1,
            mask: 1,
            unary: 2,
            shift: 2,
            binary: 2,
            second_writeback: 1,
            row_io: 1,
        }
    }

    /// Cycles for one instruction.
    #[must_use]
    pub fn cycles(&self, instr: &Instruction) -> u64 {
        match instr {
            Instruction::Check { .. } => self.check,
            Instruction::CheckZero { .. } => self.check_zero,
            Instruction::MaskTiles { .. } | Instruction::MaskAll => self.mask,
            Instruction::Unary { .. } => self.unary,
            Instruction::Shift { .. } => self.shift,
            Instruction::Binary { dst2, .. } => {
                self.binary
                    + if dst2.is_some() {
                        self.second_writeback
                    } else {
                        0
                    }
            }
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::paper()
    }
}

/// Dynamic energy charged per instruction, built from per-column
/// femtojoule constants (bitline swing + sense amplifier) plus a
/// per-instruction control overhead.
///
/// Defaults are calibrated at 45 nm so the paper's design point
/// (16-bit × 256-point batch on a 256×256 array) lands at ≈69 nJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Dual-row activation + sense, per column (fJ).
    pub sense_fj_per_col: f64,
    /// Single-row activation + sense (`Check`/`CheckZero`/`Unary` source), per column (fJ).
    pub sense_single_fj_per_col: f64,
    /// One write-back, per column (fJ).
    pub write_fj_per_col: f64,
    /// Instruction issue/decode overhead from the CTRL/CMD subarray (fJ).
    pub control_fj: f64,
    /// Normal SRAM port row read/write, per column (fJ).
    pub row_io_fj_per_col: f64,
}

impl EnergyModel {
    /// 45 nm constants (calibration documented in `EXPERIMENTS.md`: chosen
    /// so the paper's design point — 16 lanes × 256-point × 16-bit on the
    /// 262×256 array — lands at Table I's ≈69 nJ per batch).
    #[must_use]
    pub fn cmos_45nm() -> Self {
        EnergyModel {
            sense_fj_per_col: 0.68,
            sense_single_fj_per_col: 0.40,
            write_fj_per_col: 0.33,
            control_fj: 15.0,
            row_io_fj_per_col: 1.20,
        }
    }

    /// Energy in picojoules for one instruction on a `cols`-wide array.
    #[must_use]
    pub fn energy_pj(&self, instr: &Instruction, cols: usize) -> f64 {
        let c = cols as f64;
        let fj = match instr {
            Instruction::Check { .. } | Instruction::CheckZero { .. } => {
                self.sense_single_fj_per_col * c + self.control_fj
            }
            Instruction::MaskTiles { .. } | Instruction::MaskAll => self.control_fj,
            Instruction::Unary { kind, .. } => {
                let read = match kind {
                    crate::isa::UnaryKind::Zero => 0.0,
                    _ => self.sense_single_fj_per_col * c,
                };
                read + self.write_fj_per_col * c + self.control_fj
            }
            Instruction::Shift { .. } => {
                self.sense_single_fj_per_col * c + self.write_fj_per_col * c + self.control_fj
            }
            Instruction::Binary { dst2, .. } => {
                let writes = if dst2.is_some() { 2.0 } else { 1.0 };
                self.sense_fj_per_col * c + writes * self.write_fj_per_col * c + self.control_fj
            }
        };
        fj / 1000.0
    }

    /// Energy in picojoules for one data-row load/store over the SRAM port.
    #[must_use]
    pub fn row_io_pj(&self, cols: usize) -> f64 {
        self.row_io_fj_per_col * cols as f64 / 1000.0
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::cmos_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BitOp, PredMode, RowAddr, ShiftDir, UnaryKind};

    fn binary(dual: bool) -> Instruction {
        Instruction::Binary {
            dst: RowAddr(0),
            op: BitOp::And,
            src0: RowAddr(1),
            src1: RowAddr(2),
            dst2: dual.then_some((RowAddr(3), BitOp::Xor)),
            shift: None,
            pred: PredMode::Always,
        }
    }

    #[test]
    fn paper_model_is_single_cycle() {
        let t = TimingModel::paper();
        assert_eq!(t.cycles(&binary(true)), 1);
        assert_eq!(t.cycles(&binary(false)), 1);
        assert_eq!(
            t.cycles(&Instruction::Shift {
                dst: RowAddr(0),
                src: RowAddr(0),
                dir: ShiftDir::Left,
                masked: false,
                pred: PredMode::Always
            }),
            1
        );
    }

    #[test]
    fn conservative_model_charges_writebacks() {
        let t = TimingModel::conservative();
        assert_eq!(t.cycles(&binary(false)), 2);
        assert_eq!(t.cycles(&binary(true)), 3);
    }

    #[test]
    fn energy_scales_with_columns() {
        let e = EnergyModel::cmos_45nm();
        let narrow = e.energy_pj(&binary(true), 64);
        let wide = e.energy_pj(&binary(true), 256);
        assert!(
            wide > narrow * 3.0 && wide < narrow * 4.0,
            "near-linear in columns"
        );
    }

    #[test]
    fn dual_writeback_costs_more_energy() {
        let e = EnergyModel::cmos_45nm();
        assert!(e.energy_pj(&binary(true), 256) > e.energy_pj(&binary(false), 256));
    }

    #[test]
    fn zero_write_skips_the_read_energy() {
        let e = EnergyModel::cmos_45nm();
        let zero = Instruction::Unary {
            dst: RowAddr(0),
            src: RowAddr(0),
            kind: UnaryKind::Zero,
            pred: PredMode::Always,
        };
        let copy = Instruction::Unary {
            dst: RowAddr(0),
            src: RowAddr(1),
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        };
        assert!(e.energy_pj(&zero, 256) < e.energy_pj(&copy, 256));
    }
}
