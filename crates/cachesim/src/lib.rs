//! Set-associative cache-hierarchy simulator.
//!
//! Built to reproduce the roofline analysis of the BP-NTT paper (Fig. 1):
//! the paper profiles lattice-crypto kernels with Intel Advisor and observes
//! that NTT/INTT are bound by **L1/L2 bandwidth** rather than DRAM. To show
//! the same thing without Advisor, the instrumented kernels of `bpntt-ntt`
//! emit logical memory traces, and this crate replays them through a
//! configurable L1/L2/L3 hierarchy (LRU, write-allocate, write-back),
//! reporting per-level hit rates and inter-level traffic. Operational
//! intensity per level — the x-axis of the roofline — is then
//! `ops / traffic(level)`.
//!
//! # Example
//!
//! ```
//! use bpntt_cachesim::Hierarchy;
//!
//! let mut h = Hierarchy::typical_x86();
//! for i in 0..1024u64 {
//!     h.access(i * 8, 8, false); // stream 8 KiB of loads
//! }
//! let stats = h.stats();
//! assert!(stats.level_hits[0] > 0); // most accesses hit in L1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{Hierarchy, HierarchyStats};
