//! A multi-level cache hierarchy with traffic accounting.

use crate::cache::{Cache, CacheConfig};

/// Aggregated statistics for a [`Hierarchy`] run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierarchyStats {
    /// Total accesses issued by the core.
    pub accesses: u64,
    /// Bytes requested by the core (the register↔L1 traffic).
    pub core_bytes: u64,
    /// Hits per level (index 0 = L1).
    pub level_hits: Vec<u64>,
    /// Misses per level.
    pub level_misses: Vec<u64>,
    /// Bytes moved *into* each level from below (fills) plus write-backs
    /// pushed down — i.e. the traffic on the link below level `i`.
    /// `traffic_bytes[0]` is L1↔L2 traffic; the last entry is
    /// last-level-cache↔DRAM traffic.
    pub traffic_bytes: Vec<u64>,
}

impl HierarchyStats {
    /// Traffic in bytes served to the core (loads + stores at L1).
    #[must_use]
    pub fn l1_bytes(&self) -> u64 {
        self.core_bytes
    }

    /// Bytes that crossed the link just below cache level `i`
    /// (0-based; `i = 0` → L1↔L2 link).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn link_bytes(&self, i: usize) -> u64 {
        self.traffic_bytes[i]
    }
}

/// An inclusive cache hierarchy: L1 at index 0, deeper levels after,
/// DRAM behind the last level.
///
/// Fills allocate in every level on the path (write-allocate); dirty
/// evictions are written back one level down and counted as traffic.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<Cache>,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds a hierarchy from per-level configs (L1 first).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or line sizes differ between levels
    /// (mixed line sizes complicate inclusion and are not needed here).
    #[must_use]
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "hierarchy needs at least one level");
        let line = configs[0].line_size();
        assert!(
            configs.iter().all(|c| c.line_size() == line),
            "all levels must share a line size"
        );
        let n = configs.len();
        Hierarchy {
            levels: configs.iter().map(|&c| Cache::new(c)).collect(),
            stats: HierarchyStats {
                accesses: 0,
                core_bytes: 0,
                level_hits: vec![0; n],
                level_misses: vec![0; n],
                traffic_bytes: vec![0; n],
            },
        }
    }

    /// A typical x86 client hierarchy, close to the Intel parts the paper
    /// profiled with Advisor: 32 KiB / 8-way L1D, 1 MiB / 16-way L2,
    /// 8 MiB / 16-way L3, 64-byte lines.
    #[must_use]
    pub fn typical_x86() -> Self {
        Self::new(&[
            CacheConfig::new(32 * 1024, 64, 8),
            CacheConfig::new(1024 * 1024, 64, 16),
            CacheConfig::new(8 * 1024 * 1024, 64, 16),
        ])
    }

    /// Number of cache levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Issues one core access of `size` bytes at `addr`.
    ///
    /// Accesses are assumed not to straddle cache lines (the NTT traces use
    /// naturally aligned 4- or 8-byte elements); a straddling access is
    /// split internally to keep accounting exact.
    pub fn access(&mut self, addr: u64, size: u64, write: bool) {
        self.stats.accesses += 1;
        self.stats.core_bytes += size;
        let line = self.levels[0].config().line_size();
        let first_line = addr / line;
        let last_line = (addr + size.saturating_sub(1)) / line;
        for l in first_line..=last_line {
            self.access_one_line(l * line, write);
        }
    }

    fn access_one_line(&mut self, line_addr: u64, write: bool) {
        let line = self.levels[0].config().line_size();
        let depth = self.levels.len();
        // Find the first level that hits.
        let mut served_by = depth; // `depth` means DRAM
        let mut writebacks: Vec<(usize, u64)> = Vec::new();
        for (i, level) in self.levels.iter_mut().enumerate() {
            let res = level.access_line(line_addr, write && i == 0);
            if res.hit {
                self.stats.level_hits[i] += 1;
                served_by = i;
                if let Some(victim) = res.writeback {
                    writebacks.push((i, victim));
                }
                break;
            }
            self.stats.level_misses[i] += 1;
            if let Some(victim) = res.writeback {
                writebacks.push((i, victim));
            }
        }
        // Fill traffic: the line crossed every link between the serving
        // level and L1.
        for i in 0..served_by.min(depth) {
            self.stats.traffic_bytes[i] += line;
        }
        if served_by == depth {
            // Served from DRAM: the access already allocated in every level
            // (access_line on miss fills), so only account the last link.
            // (Links between caches were counted in the loop above.)
        }
        // Write-backs: a dirty victim evicted from level i crosses the link
        // below i into level i+1 (or DRAM).
        for (i, victim) in writebacks {
            self.stats.traffic_bytes[i] += line;
            if i + 1 < depth {
                self.levels[i + 1].fill_dirty(victim);
            }
        }
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zeroes the statistics while keeping cache contents — used to
    /// measure steady-state (warm) behaviour after a warm-up pass.
    pub fn reset_stats(&mut self) {
        let n = self.levels.len();
        self.stats = HierarchyStats {
            accesses: 0,
            core_bytes: 0,
            level_hits: vec![0; n],
            level_misses: vec![0; n],
            traffic_bytes: vec![0; n],
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // L1: 128 B (2 lines, direct-mapped-ish), L2: 512 B.
        Hierarchy::new(&[CacheConfig::new(128, 64, 1), CacheConfig::new(512, 64, 2)])
    }

    #[test]
    fn l1_resident_workload_generates_no_l2_traffic_after_warmup() {
        let mut h = tiny();
        h.access(0, 8, false); // cold miss: fills both levels
        h.access(64, 8, false);
        let warm = h.stats().traffic_bytes.clone();
        for _ in 0..100 {
            h.access(0, 8, false);
            h.access(64, 8, false);
        }
        assert_eq!(
            h.stats().traffic_bytes,
            warm,
            "steady-state must stay in L1"
        );
        assert_eq!(h.stats().level_hits[0], 200);
    }

    #[test]
    fn streaming_workload_misses_everywhere() {
        let mut h = tiny();
        let lines = 64u64;
        for i in 0..lines {
            h.access(i * 64, 8, false);
        }
        let s = h.stats();
        assert_eq!(s.level_misses[0], lines);
        // Working set (4 KiB) exceeds L2 (512 B): every line came from DRAM.
        assert_eq!(s.level_misses[1], lines);
        assert_eq!(s.traffic_bytes[0], lines * 64);
        assert_eq!(s.traffic_bytes[1], lines * 64);
    }

    #[test]
    fn l2_resident_workload_hits_l2() {
        let mut h = tiny();
        // 6 lines: exceeds L1 (2 lines), fits L2 (8 lines).
        let lines = 6u64;
        for _round in 0..10 {
            for i in 0..lines {
                h.access(i * 64, 8, false);
            }
        }
        let s = h.stats();
        assert!(s.level_hits[1] > 0, "L2 should serve the L1 overflow");
        // After the cold round, DRAM traffic must not grow.
        assert_eq!(s.traffic_bytes[1], lines * 64);
    }

    #[test]
    fn dirty_writeback_traffic_is_counted() {
        let mut h = Hierarchy::new(&[CacheConfig::new(64, 64, 1)]); // single 1-line L1
        h.access(0, 8, true); // dirty line 0; fill traffic 64
        h.access(64, 8, false); // evicts dirty line 0 → writeback + fill
        let s = h.stats();
        assert_eq!(s.traffic_bytes[0], 64 * 3, "two fills + one writeback");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = tiny();
        h.access(60, 8, false); // crosses the line boundary at 64
        assert_eq!(h.stats().level_misses[0], 2);
    }

    #[test]
    fn hits_plus_misses_equal_line_accesses() {
        let mut h = Hierarchy::typical_x86();
        let mut x = 12345u64;
        let mut line_accesses = 0u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (1 << 22);
            h.access(addr, 4, x & 1 == 0);
            let line = 64;
            line_accesses += (addr + 3) / line - addr / line + 1;
        }
        let s = h.stats();
        assert_eq!(s.level_hits[0] + s.level_misses[0], line_accesses);
        assert_eq!(s.accesses, 10_000);
    }
}
