//! A single set-associative, write-back, write-allocate cache level.

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// let l1 = bpntt_cachesim::CacheConfig::new(32 * 1024, 64, 8);
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    size_bytes: u64,
    line_size: u64,
    ways: u64,
}

impl CacheConfig {
    /// Builds a config; all three quantities must be powers of two and the
    /// capacity must hold at least one set.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or not a power of two, or if
    /// `size < line_size × ways`.
    #[must_use]
    pub fn new(size_bytes: u64, line_size: u64, ways: u64) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            ways.is_power_of_two(),
            "associativity must be a power of two"
        );
        assert!(
            size_bytes >= line_size * ways,
            "cache must hold at least one set"
        );
        CacheConfig {
            size_bytes,
            line_size,
            ways,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Cache-line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn ways(&self) -> u64 {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_size * self.ways)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the last touch; smallest = LRU victim.
    last_used: u64,
}

/// Outcome of a single cache-line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim line's base address, if the fill evicted one.
    pub writeback: Option<u64>,
}

/// One cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let total_lines = (cfg.sets() * cfg.ways()) as usize;
        Cache {
            cfg,
            lines: vec![Line::default(); total_lines],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hits since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_range(&self, addr: u64) -> (usize, usize, u64) {
        let line_addr = addr / self.cfg.line_size;
        let set = (line_addr % self.cfg.sets()) as usize;
        let tag = line_addr / self.cfg.sets();
        let start = set * self.cfg.ways() as usize;
        (start, start + self.cfg.ways() as usize, tag)
    }

    /// Accesses the line containing `addr`; on a miss the line is filled
    /// (write-allocate), possibly evicting a dirty victim whose base address
    /// is reported for write-back accounting.
    pub fn access_line(&mut self, addr: u64, write: bool) -> LineAccess {
        self.clock += 1;
        let (start, end, tag) = self.set_range(addr);
        // Hit path.
        for line in &mut self.lines[start..end] {
            if line.valid && line.tag == tag {
                line.last_used = self.clock;
                line.dirty |= write;
                self.hits += 1;
                return LineAccess {
                    hit: true,
                    writeback: None,
                };
            }
        }
        // Miss: pick invalid slot or LRU victim.
        self.misses += 1;
        let set_base = start;
        let victim_idx = {
            let slice = &self.lines[start..end];
            match slice.iter().position(|l| !l.valid) {
                Some(i) => set_base + i,
                None => {
                    let (i, _) = slice
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.last_used)
                        .expect("associativity is nonzero");
                    set_base + i
                }
            }
        };
        let victim = self.lines[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            let set =
                (victim_idx - victim_idx % self.cfg.ways() as usize) / self.cfg.ways() as usize;
            Some((victim.tag * self.cfg.sets() + set as u64) * self.cfg.line_size)
        } else {
            None
        };
        self.lines[victim_idx] = Line {
            tag,
            valid: true,
            dirty: write,
            last_used: self.clock,
        };
        LineAccess {
            hit: false,
            writeback,
        }
    }

    /// Marks the line containing `addr` dirty if present (used when a lower
    /// level writes back into this one).
    pub fn fill_dirty(&mut self, addr: u64) {
        self.clock += 1;
        let (start, end, tag) = self.set_range(addr);
        for line in &mut self.lines[start..end] {
            if line.valid && line.tag == tag {
                line.dirty = true;
                line.last_used = self.clock;
                return;
            }
        }
        // Not present: treat as a write access (allocate).
        let _ = self.access_line(addr, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let cfg = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(cfg.sets(), 64);
        let cfg = CacheConfig::new(64, 64, 1);
        assert_eq!(cfg.sets(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_size() {
        let _ = CacheConfig::new(3000, 64, 8);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2));
        assert!(!c.access_line(0, false).hit);
        assert!(c.access_line(0, false).hit);
        assert!(c.access_line(63, false).hit, "same line");
        assert!(!c.access_line(64, false).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, 1 set of interest: lines A, B, C mapping to the same set.
        let cfg = CacheConfig::new(128, 64, 2); // 1 set, 2 ways
        let mut c = Cache::new(cfg);
        let (a, b, d) = (0u64, 64, 128);
        c.access_line(a, false);
        c.access_line(b, false);
        c.access_line(a, false); // A is now MRU
        assert!(!c.access_line(d, false).hit); // evicts B (LRU)
        assert!(c.access_line(a, false).hit, "A must survive");
        assert!(!c.access_line(b, false).hit, "B was evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let cfg = CacheConfig::new(128, 64, 1); // direct-mapped, 2 sets
        let mut c = Cache::new(cfg);
        c.access_line(0, true); // dirty
        let res = c.access_line(128, false); // same set (stride = sets*line = 128)
        assert!(!res.hit);
        assert_eq!(res.writeback, Some(0));
        // Clean eviction has no writeback.
        let res = c.access_line(256, false);
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn writeback_address_reconstruction() {
        let cfg = CacheConfig::new(4096, 64, 2); // 32 sets
        let mut c = Cache::new(cfg);
        let addr = 64 * 32 * 7 + 64 * 5; // tag 7, set 5
        c.access_line(addr, true);
        // Evict by touching two more tags in set 5.
        let a2 = 64 * 32 * 8 + 64 * 5;
        let a3 = 64 * 32 * 9 + 64 * 5;
        c.access_line(a2, false);
        let res = c.access_line(a3, false);
        assert_eq!(res.writeback, Some(addr));
    }
}
