//! First-order technology-node projection.
//!
//! The paper footnotes Table I with "technology nodes are projected to
//! 45 nm for an apples-to-apples comparison". This module provides the
//! standard first-order scaling used for such projections: with the
//! linear-dimension ratio `s = to_nm / from_nm`,
//!
//! * area scales as `s²`,
//! * gate delay scales as `s` (so frequency as `1/s`),
//! * switching energy scales as `s³` (capacitance × V², both shrinking).
//!
//! These exponents are the classical Dennard rules; published projections
//! (including the paper's) often fold in voltage and design-specific
//! corrections, so round-trips against printed numbers are approximate by
//! nature — the unit tests check direction and magnitude, not identity.

use crate::spec::DesignSpec;

/// Scales a design point from its `spec.tech_nm` node to `to_nm`.
///
/// # Example
///
/// ```
/// use bpntt_baselines::{projection, published};
///
/// let at_45 = published::sapphire_45nm();
/// let at_28 = projection::project(&at_45, 28);
/// assert!(at_28.area_mm2.unwrap() < at_45.area_mm2.unwrap());
/// assert!(at_28.latency_us < at_45.latency_us);
/// ```
#[must_use]
pub fn project(spec: &DesignSpec, to_nm: u32) -> DesignSpec {
    let s = f64::from(to_nm) / f64::from(spec.tech_nm);
    DesignSpec {
        tech_nm: to_nm,
        max_freq_mhz: spec.max_freq_mhz.map(|f| f / s),
        latency_us: spec.latency_us * s,
        throughput_kntt_s: spec.throughput_kntt_s / s,
        energy_nj: spec.energy_nj * s.powi(3),
        area_mm2: spec.area_mm2.map(|a| a * s * s),
        ..spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::published;

    #[test]
    fn projection_round_trips() {
        let d45 = published::mentt_45nm();
        let d65 = project(&d45, 65);
        let back = project(&d65, 45);
        assert!((back.area_mm2.unwrap() - d45.area_mm2.unwrap()).abs() < 1e-9);
        assert!((back.energy_nj - d45.energy_nj).abs() < 1e-6);
        assert!((back.latency_us - d45.latency_us).abs() < 1e-9);
    }

    #[test]
    fn scaling_directions() {
        let d45 = published::leia_45nm();
        let d40 = project(&d45, 40);
        assert!(d40.area_mm2.unwrap() < d45.area_mm2.unwrap());
        assert!(d40.energy_nj < d45.energy_nj);
        assert!(d40.latency_us < d45.latency_us);
        assert!(d40.max_freq_mhz.unwrap() > d45.max_freq_mhz.unwrap());
        // Efficiency metrics improve with shrink (both numerator effects).
        assert!(d40.tput_per_power() > d45.tput_per_power());
        assert!(d40.tput_per_area().unwrap() > d45.tput_per_area().unwrap());
    }

    #[test]
    fn mentt_original_node_magnitude() {
        // MeNTT published ~0.36 mm² at 65 nm; projecting our 45 nm row back
        // up should land in that neighbourhood (first-order rules).
        let d65 = project(&published::mentt_45nm(), 65);
        let a = d65.area_mm2.unwrap();
        assert!(a > 0.25 && a < 0.5, "area {a:.3} mm² should be ≈0.36 mm²");
    }
}
