//! A measured bit-serial (Neural-Cache-style) modular-multiplication
//! kernel on the same SRAM simulator.
//!
//! Bit-serial in-SRAM arithmetic stores data *transposed*: bit `b` of every
//! coefficient lives in row `base + b`, one coefficient per column, and the
//! sense amplifiers process one bit position of **all** coefficients per
//! activation. Two consequences the paper leans on:
//!
//! * the radix-2 Montgomery "halve" step is a row *relabeling* — free, no
//!   shifts — but every addition serializes over the `w` bit rows
//!   (`O(w)` activations per add, `O(w²)` per multiplication), and
//! * operands must be stacked vertically, which demands long columns
//!   (the paper: "4096 rows for a 128-point 32-bit polynomial"), a poor
//!   fit for commodity subarrays.
//!
//! [`BitSerialKernel`] implements interleaved Montgomery multiplication in
//! this style — validated against the word-level reference — so the
//! ablation study can compare *measured* cycles, shifts, and row budgets
//! between the bit-serial and bit-parallel formulations instead of quoting
//! the paper.

use bpntt_sram::{
    BitOp, BitRow, Controller, Instruction, PredMode, RowAddr, SramArray, SramError, Stats,
    UnaryKind,
};

/// Row-budget accounting of the transposed layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitSerialLayout {
    /// Operand `B`: `w` bit rows.
    pub b_rows: usize,
    /// Constant modulus `M`: `w` bit rows (all-ones / all-zeros patterns).
    pub m_rows: usize,
    /// Accumulator window: `2w + 1` rows (the window slides one row per
    /// Montgomery iteration — that is the "free" halving).
    pub p_rows: usize,
    /// Carry plus two half-adder temporaries.
    pub temp_rows: usize,
}

impl BitSerialLayout {
    /// Budget for `w`-bit operands.
    #[must_use]
    pub fn for_width(w: usize) -> Self {
        BitSerialLayout {
            b_rows: w,
            m_rows: w,
            p_rows: 2 * w + 1,
            temp_rows: 3,
        }
    }

    /// Total rows needed.
    #[must_use]
    pub fn total(&self) -> usize {
        self.b_rows + self.m_rows + self.p_rows + self.temp_rows
    }
}

/// A bit-serial Montgomery multiplier: multiplies every column's operand by
/// a compile-time constant `a`, producing `a·B·R⁻¹` per column.
#[derive(Debug)]
pub struct BitSerialKernel {
    ctl: Controller,
    w: usize,
    q: u64,
    n_cols: usize,
    // row bases
    b_base: usize,
    m_base: usize,
    p_base: usize,
    carry_row: usize,
    t0_row: usize,
    t1_row: usize,
}

impl BitSerialKernel {
    /// Builds a kernel processing `n_cols` coefficients of `w` bits modulo
    /// odd `q < 2^(w−1)`.
    ///
    /// # Errors
    ///
    /// Propagates simulator geometry errors.
    ///
    /// # Panics
    ///
    /// Panics if `q` violates the width/headroom requirements.
    pub fn new(n_cols: usize, w: usize, q: u64) -> Result<Self, SramError> {
        assert!((2..=63).contains(&w), "width {w} outside 2..=63");
        assert!(
            q % 2 == 1 && q < (1u64 << (w - 1)),
            "modulus needs headroom"
        );
        let layout = BitSerialLayout::for_width(w);
        let rows = layout.total();
        let array = SramArray::new(rows, n_cols)?;
        // Tile width 1: every column is its own lane, with per-column
        // predication through `Check` — the transposed dual of BP-NTT.
        let mut ctl = Controller::new(array, 1)?;
        let b_base = 0;
        let m_base = w;
        let p_base = 2 * w;
        let carry_row = 4 * w + 1;
        let t0_row = 4 * w + 2;
        let t1_row = 4 * w + 3;
        // Install the modulus pattern rows: bit b of M replicated across
        // all columns.
        for b in 0..w {
            let mut row = BitRow::zero(n_cols);
            if (q >> b) & 1 == 1 {
                for c in 0..n_cols {
                    row.set_bit(c, true);
                }
            }
            ctl.load_data_row(m_base + b, row);
        }
        Ok(BitSerialKernel {
            ctl,
            w,
            q,
            n_cols,
            b_base,
            m_base,
            p_base,
            carry_row,
            t0_row,
            t1_row,
        })
    }

    /// Loads one `w`-bit operand per column.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_cols` or any value is unreduced.
    pub fn load_operands(&mut self, values: &[u64]) {
        assert_eq!(values.len(), self.n_cols);
        assert!(
            values.iter().all(|&v| v < self.q),
            "operands must be reduced"
        );
        for b in 0..self.w {
            let mut row = BitRow::zero(self.n_cols);
            for (c, &v) in values.iter().enumerate() {
                row.set_bit(c, (v >> b) & 1 == 1);
            }
            self.ctl.load_data_row(self.b_base + b, row);
        }
        // Clear the accumulator window.
        for r in 0..(2 * self.w + 1) {
            self.ctl
                .execute(&Instruction::Unary {
                    dst: RowAddr((self.p_base + r) as u16),
                    src: RowAddr((self.p_base + r) as u16),
                    kind: UnaryKind::Zero,
                    pred: PredMode::Always,
                })
                .expect("in-range rows");
        }
    }

    /// Bit-serial ripple addition of the row set starting at `addend_base`
    /// into the accumulator window at `p` (both `w` rows), optionally
    /// predicated per column.
    fn add_rows(&mut self, p: usize, addend_base: usize, pred: PredMode) -> Result<(), SramError> {
        let carry = RowAddr(self.carry_row as u16);
        let t0 = RowAddr(self.t0_row as u16);
        let t1 = RowAddr(self.t1_row as u16);
        self.ctl.execute(&Instruction::Unary {
            dst: carry,
            src: carry,
            kind: UnaryKind::Zero,
            pred,
        })?;
        for b in 0..self.w {
            let pb = RowAddr((p + b) as u16);
            let ab = RowAddr((addend_base + b) as u16);
            // t0 = P_b ⊕ A_b ; t1 = P_b ∧ A_b (one activation).
            self.ctl.execute(&Instruction::Binary {
                dst: t0,
                op: BitOp::Xor,
                src0: pb,
                src1: ab,
                dst2: Some((t1, BitOp::And)),
                shift: None,
                pred,
            })?;
            // P_b = t0 ⊕ C ; t0 = t0 ∧ C (carry propagate part).
            self.ctl.execute(&Instruction::Binary {
                dst: pb,
                op: BitOp::Xor,
                src0: t0,
                src1: carry,
                dst2: Some((t0, BitOp::And)),
                shift: None,
                pred,
            })?;
            // C = t1 ∨ t0 (generate | propagate·carry).
            self.ctl.execute(&Instruction::Binary {
                dst: carry,
                op: BitOp::Or,
                src0: t1,
                src1: t0,
                dst2: None,
                shift: None,
                pred,
            })?;
        }
        // Carry out of the top bit extends the accumulator window.
        self.ctl.execute(&Instruction::Binary {
            dst: RowAddr((p + self.w) as u16),
            op: BitOp::Or,
            src0: RowAddr((p + self.w) as u16),
            src1: carry,
            dst2: None,
            shift: None,
            pred,
        })?;
        Ok(())
    }

    /// Runs the interleaved Montgomery multiplication by constant `a`:
    /// each column `c` ends with `a · B_c · R⁻¹ (mod q)`, `< 2q`.
    ///
    /// The halving step advances the accumulator window by one row —
    /// observe that the kernel executes **zero shift instructions**
    /// (`stats().counts.shift_moves() == 0`): bit-serial designs trade
    /// shifts for `O(w²)` serialized activations and tall arrays.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    ///
    /// # Panics
    ///
    /// Panics if `a` is unreduced.
    pub fn modmul_const(&mut self, a: u64) -> Result<(), SramError> {
        assert!(a < self.q);
        for i in 0..self.w {
            let p = self.p_base + i; // window slides: the free ">> 1"
            if (a >> i) & 1 == 1 {
                self.add_rows(p, self.b_base, PredMode::Always)?;
            }
            // Conditional +M on odd accumulators, per column.
            self.ctl.execute(&Instruction::Check {
                src: RowAddr(p as u16),
                bit: 0,
            })?;
            self.add_rows(p, self.m_base, PredMode::IfSet)?;
        }
        Ok(())
    }

    /// Reads each column's accumulator (`w + 1` bits, value `< 2q`).
    #[must_use]
    pub fn read_results(&mut self) -> Vec<u64> {
        let p = self.p_base + self.w;
        let mut out = vec![0u64; self.n_cols];
        for b in 0..=self.w {
            let row = self.ctl.read_data_row(p + b);
            for (c, v) in out.iter_mut().enumerate() {
                if row.bit(c) {
                    *v |= 1 << b;
                }
            }
        }
        out
    }

    /// Simulator statistics so far.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        self.ctl.stats()
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.ctl.reset_stats();
    }

    /// Number of columns (parallel coefficients).
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Word width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }
}

/// Analytic bit-serial NTT cost: butterflies × (one modmul + two ripple
/// adds), using a *measured* per-modmul cycle count.
#[must_use]
pub fn ntt_cycles_estimate(n: usize, modmul_cycles: u64, w: usize) -> u64 {
    let butterflies = (n as u64 / 2) * n.trailing_zeros() as u64;
    // Two modular add/subtracts at ~5 activations per bit row, plus the
    // conditional correction pass.
    let addsub = 2 * (5 * w as u64 + 2) + (5 * w as u64) / 2;
    butterflies * (modmul_cycles + addsub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_modmath::montgomery::MontCtx;
    use bpntt_modmath::zq::reduce_once;

    #[test]
    fn layout_row_budget() {
        // The paper's point: 32-bit bit-serial arithmetic needs >130 rows
        // of operand stack — far taller than BP-NTT's 6 spare rows.
        let l = BitSerialLayout::for_width(32);
        assert_eq!(l.total(), 32 + 32 + 65 + 3);
        assert!(l.total() > 130);
    }

    #[test]
    fn modmul_matches_reference_for_all_columns() {
        let q = 7681u64; // 13-bit prime, w = 14
        let w = 14;
        let ctx = MontCtx::new(q, w as u32).unwrap();
        let n_cols = 64;
        let mut k = BitSerialKernel::new(n_cols, w, q).unwrap();
        let operands: Vec<u64> = (0..n_cols as u64).map(|c| (c * 131 + 7) % q).collect();
        k.load_operands(&operands);
        let a = 1234 % q;
        k.modmul_const(a).unwrap();
        let got = k.read_results();
        for (c, (&b, &raw)) in operands.iter().zip(&got).enumerate() {
            assert!(raw < 2 * q, "column {c} raw {raw}");
            assert_eq!(reduce_once(raw, q), ctx.mont_mul(a, b), "column {c}");
        }
    }

    #[test]
    fn bit_serial_needs_no_shifts_but_many_cycles() {
        let q = 97u64;
        let w = 8;
        let mut k = BitSerialKernel::new(16, w, q).unwrap();
        k.load_operands(&[5; 16]);
        k.reset_stats();
        k.modmul_const(42).unwrap();
        let s = k.stats();
        assert_eq!(s.counts.shift_moves(), 0, "transposed layout never shifts");
        // ≥3 activations per bit row per conditional add, w iterations:
        // the cycle count is quadratic in the width.
        assert!(
            s.cycles > (3 * 8 * 8) as u64,
            "w² serialization: got {}",
            s.cycles
        );
    }

    #[test]
    fn estimate_is_monotonic() {
        assert!(ntt_cycles_estimate(256, 2000, 16) > ntt_cycles_estimate(128, 2000, 16));
        assert!(ntt_cycles_estimate(256, 4000, 16) > ntt_cycles_estimate(256, 2000, 16));
    }
}
