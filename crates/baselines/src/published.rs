//! The seven Table-I baseline design points, projected to 45 nm.
//!
//! Values are the paper's Table I entries (which the authors themselves
//! projected from each design's original node — see each constructor's
//! note). Derived columns (throughput-per-area, throughput-per-power) are
//! *recomputed* from the primary columns and unit-tested against the
//! printed values, which validates our metric definitions.

use crate::spec::{DesignSpec, MemTechnology};

/// MeNTT (Li et al., IEEE TVLSI 2022): bit-serial in-SRAM NTT with
/// near-memory adders/subtractors, originally at 65 nm.
#[must_use]
pub fn mentt_45nm() -> DesignSpec {
    DesignSpec {
        name: "MeNTT",
        technology: MemTechnology::InSram,
        tech_nm: 45,
        coeff_bits: 14,
        max_freq_mhz: Some(218.0),
        latency_us: 15.9,
        throughput_kntt_s: 62.8,
        energy_nj: 47.8,
        area_mm2: Some(0.173),
        note: "bit-serial in-SRAM; projected from 65 nm by the BP-NTT authors",
    }
}

/// CryptoPIM (Nejatollahi et al., DAC 2020): ReRAM NTT accelerator with a
/// shift-add reduction pipeline.
#[must_use]
pub fn cryptopim_45nm() -> DesignSpec {
    DesignSpec {
        name: "CryptoPIM",
        technology: MemTechnology::ReRam,
        tech_nm: 45,
        coeff_bits: 16,
        max_freq_mhz: Some(909.0),
        latency_us: 68.7,
        throughput_kntt_s: 553.3,
        energy_nj: 2600.0,
        area_mm2: Some(0.152),
        note: "area is the authors' optimistic subarray-only estimate (Destiny)",
    }
}

/// RM-NTT (Park et al., IEEE JXCDC 2022): ReRAM vector–matrix
/// multiplication NTT.
#[must_use]
pub fn rmntt_45nm() -> DesignSpec {
    DesignSpec {
        name: "RM-NTT",
        technology: MemTechnology::ReRam,
        tech_nm: 45,
        coeff_bits: 14,
        max_freq_mhz: Some(249.0),
        latency_us: 0.45,
        throughput_kntt_s: 2200.0,
        energy_nj: 602.0,
        area_mm2: Some(0.289),
        note: "area is the subarray-only estimate; VMM formulation",
    }
}

/// LEIA (Song et al., CICC 2018): lattice-crypto ASIC, originally 40 nm.
#[must_use]
pub fn leia_45nm() -> DesignSpec {
    DesignSpec {
        name: "LEIA",
        technology: MemTechnology::Asic,
        tech_nm: 45,
        coeff_bits: 14,
        max_freq_mhz: Some(267.0),
        latency_us: 0.6,
        // Table I prints 1.7K; 1665 reproduces both printed efficiency
        // columns (940.6 kNTT/s/mm², 22.7 kNTT/mJ) exactly.
        throughput_kntt_s: 1665.0,
        energy_nj: 44.1,
        area_mm2: Some(1.77),
        note: "projected from the 2.05 mm² / 40 nm silicon",
    }
}

/// Sapphire (Banerjee et al., TCHES 2019): configurable lattice-crypto
/// processor, originally 40 nm.
#[must_use]
pub fn sapphire_45nm() -> DesignSpec {
    DesignSpec {
        name: "Sapphire",
        technology: MemTechnology::Asic,
        tech_nm: 45,
        coeff_bits: 14,
        max_freq_mhz: Some(64.0),
        latency_us: 20.1,
        throughput_kntt_s: 49.7,
        energy_nj: 236.3,
        area_mm2: Some(0.354),
        note: "low-power modular-arithmetic core; projected from 40 nm",
    }
}

/// FPGA energy-efficient array processor (Nejatollahi et al., ICASSP 2020).
#[must_use]
pub fn fpga_45nm() -> DesignSpec {
    DesignSpec {
        name: "FPGA",
        technology: MemTechnology::Fpga,
        tech_nm: 45,
        coeff_bits: 16,
        max_freq_mhz: Some(164.0),
        latency_us: 24.3,
        throughput_kntt_s: 41.2,
        energy_nj: 3061.0,
        area_mm2: None,
        note: "reconfigurable fabric; die area not comparable",
    }
}

/// Software NTT on an x86 CPU (as reported by the CryptoPIM paper).
#[must_use]
pub fn cpu() -> DesignSpec {
    DesignSpec {
        name: "CPU",
        technology: MemTechnology::Cpu,
        tech_nm: 45,
        coeff_bits: 16,
        max_freq_mhz: Some(2000.0),
        latency_us: 85.0,
        throughput_kntt_s: 11.8,
        energy_nj: 570_000.0,
        area_mm2: None,
        note: "x86 software baseline from the CryptoPIM measurements",
    }
}

/// All seven baselines in Table I's row order.
#[must_use]
pub fn all_baselines() -> Vec<DesignSpec> {
    vec![
        mentt_45nm(),
        cryptopim_45nm(),
        rmntt_45nm(),
        leia_45nm(),
        sapphire_45nm(),
        fpga_45nm(),
        cpu(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each printed efficiency column of Table I must be reproducible from
    /// the primary columns with our metric definitions.
    #[test]
    fn derived_columns_match_table_one() {
        let cases: &[(DesignSpec, Option<f64>, f64)] = &[
            (mentt_45nm(), Some(364.0), 20.9),
            (cryptopim_45nm(), Some(3600.0), 14.7),
            (rmntt_45nm(), Some(7700.0), 1.67),
            (leia_45nm(), Some(940.6), 22.7),
            (sapphire_45nm(), Some(140.1), 4.23),
        ];
        for (spec, ta, tp) in cases {
            if let Some(ta) = ta {
                let got = spec.tput_per_area().expect("area known");
                assert!(
                    (got - ta).abs() / ta < 0.06,
                    "{}: TA {got:.1} vs printed {ta}",
                    spec.name
                );
            }
            let got = spec.tput_per_power();
            assert!(
                (got - tp).abs() / tp < 0.04,
                "{}: TP {got:.2} vs printed {tp}",
                spec.name
            );
        }
    }

    #[test]
    fn headline_ratios_hold() {
        // "10–138× better throughput-per-power": BP-NTT's printed 230.7
        // against each baseline with known TP.
        let bp_tp = 230.7;
        let tps: Vec<f64> = all_baselines()
            .iter()
            .filter(|d| d.technology != MemTechnology::Cpu && d.technology != MemTechnology::Fpga)
            .map(|d| bp_tp / d.tput_per_power())
            .collect();
        let min = tps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tps.iter().cloned().fold(0.0, f64::max);
        assert!(min > 9.0 && min < 12.0, "min ratio {min:.1} should be ≈10×");
        assert!(
            max > 130.0 && max < 145.0,
            "max ratio {max:.1} should be ≈138×"
        );
        // "up to 29× higher throughput-per-area" vs ASIC/FPGA:
        let bp_ta = 4100.0;
        let sapphire_ratio = bp_ta / sapphire_45nm().tput_per_area().unwrap();
        assert!(
            sapphire_ratio > 28.0 && sapphire_ratio < 30.5,
            "{sapphire_ratio:.1}"
        );
    }

    #[test]
    fn all_rows_present() {
        assert_eq!(all_baselines().len(), 7);
    }
}
