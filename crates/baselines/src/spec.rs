//! The Table-I design-point schema.

use std::fmt;

/// Implementation technology of a compared design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTechnology {
    /// Processing in 6T SRAM (BP-NTT, MeNTT).
    InSram,
    /// Processing in resistive RAM (CryptoPIM, RM-NTT).
    ReRam,
    /// Standard-cell ASIC (LEIA, Sapphire).
    Asic,
    /// FPGA implementation.
    Fpga,
    /// General-purpose CPU software.
    Cpu,
}

impl fmt::Display for MemTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemTechnology::InSram => "In-SRAM",
            MemTechnology::ReRam => "ReRAM",
            MemTechnology::Asic => "ASIC",
            MemTechnology::Fpga => "FPGA",
            MemTechnology::Cpu => "x86",
        };
        f.write_str(s)
    }
}

/// One row of Table I: a 256-point-NTT design point at a common node.
///
/// # Example
///
/// ```
/// use bpntt_baselines::published;
///
/// let mentt = published::mentt_45nm();
/// assert!((mentt.tput_per_area().unwrap() - 364.0).abs() / 364.0 < 0.05);
/// assert!((mentt.tput_per_power() - 20.9).abs() / 20.9 < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpec {
    /// Design name as cited in the paper.
    pub name: &'static str,
    /// Implementation technology.
    pub technology: MemTechnology,
    /// Technology node the numbers refer to (after projection).
    pub tech_nm: u32,
    /// Coefficient bit width of the evaluated configuration.
    pub coeff_bits: u32,
    /// Maximum clock in MHz (`None` where the paper leaves it blank).
    pub max_freq_mhz: Option<f64>,
    /// Latency of one 256-point NTT batch in µs.
    pub latency_us: f64,
    /// Throughput in kNTT/s.
    pub throughput_kntt_s: f64,
    /// Energy per batch in nJ.
    pub energy_nj: f64,
    /// Area in mm² (`None` for the FPGA/CPU rows).
    pub area_mm2: Option<f64>,
    /// Provenance note (original node, source of the projection).
    pub note: &'static str,
}

impl DesignSpec {
    /// Throughput per area in kNTT/s/mm², when area is known.
    #[must_use]
    pub fn tput_per_area(&self) -> Option<f64> {
        self.area_mm2.map(|a| self.throughput_kntt_s / a)
    }

    /// Throughput per power in kNTT/mJ.
    ///
    /// Power is `energy / latency`; the metric reduces to
    /// `throughput / (energy/latency)` in kNTT/s per mW.
    #[must_use]
    pub fn tput_per_power(&self) -> f64 {
        let power_mw = self.energy_nj * 1e-9 / (self.latency_us * 1e-6) * 1e3;
        self.throughput_kntt_s / power_mw
    }

    /// Energy attributable to one NTT, in nJ (energy divided by the NTTs
    /// completed in one latency window).
    #[must_use]
    pub fn energy_per_ntt_nj(&self) -> f64 {
        let ntts_per_batch = self.throughput_kntt_s * 1e3 * self.latency_us * 1e-6;
        self.energy_nj / ntts_per_batch
    }
}

impl fmt::Display for DesignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} {:<8} {:>3}b {:>8} {:>9.2} {:>9.1} {:>9.1} {:>8} {:>9} {:>9.2}",
            self.name,
            self.technology.to_string(),
            self.coeff_bits,
            self.max_freq_mhz.map_or("-".into(), |v| format!("{v:.0}")),
            self.latency_us,
            self.throughput_kntt_s,
            self.energy_nj,
            self.area_mm2.map_or("-".into(), |v| format!("{v:.3}")),
            self.tput_per_area()
                .map_or("-".into(), |v| format!("{v:.1}")),
            self.tput_per_power(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let d = DesignSpec {
            name: "toy",
            technology: MemTechnology::Asic,
            tech_nm: 45,
            coeff_bits: 16,
            max_freq_mhz: Some(1000.0),
            latency_us: 10.0,
            throughput_kntt_s: 100.0,
            energy_nj: 1000.0,
            area_mm2: Some(2.0),
            note: "",
        };
        assert_eq!(d.tput_per_area(), Some(50.0));
        // power = 1000nJ / 10µs = 0.1 mW... = 1e-6/1e-5 W = 0.1 W = 100 mW
        // TP = 100 kNTT/s / 100 mW = 1 kNTT/mJ.
        assert!((d.tput_per_power() - 1.0).abs() < 1e-9);
        // 1 NTT per µs × 10 µs = 1 NTT per batch → 1000 nJ each.
        assert!((d.energy_per_ntt_nj() - 1000.0).abs() < 1e-9);
        assert!(d.to_string().contains("toy"));
    }
}
