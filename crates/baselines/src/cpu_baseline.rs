//! A *measured* CPU baseline: times this crate tree's own software NTT on
//! the host and casts it into the Table-I schema, complementing the cited
//! CPU row (which comes from the CryptoPIM paper's measurements).

use crate::spec::{DesignSpec, MemTechnology};
use bpntt_ntt::{forward, NttParams, Polynomial, TwiddleTable};
use std::time::Instant;

/// Times `iters` forward NTTs of the given parameter set on the host CPU
/// and returns the mean latency in microseconds.
///
/// # Panics
///
/// Panics if `iters` is zero.
#[must_use]
pub fn measure_host_ntt_us(params: &NttParams, iters: u32) -> f64 {
    assert!(iters > 0);
    let twiddles = TwiddleTable::new(params);
    let poly = Polynomial::pseudo_random(params, 0xFACE);
    let mut a = poly.coeffs().to_vec();
    // Warm up.
    forward::ntt_in_place_unchecked(params, &twiddles, &mut a);
    let start = Instant::now();
    for _ in 0..iters {
        forward::ntt_in_place_unchecked(params, &twiddles, &mut a);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
}

/// Builds a host-measured CPU design point. Energy is estimated from an
/// assumed package power (`watts`), the honest way to fill Table I's
/// energy column for software.
#[must_use]
pub fn host_cpu_row(params: &NttParams, iters: u32, watts: f64) -> DesignSpec {
    let latency_us = measure_host_ntt_us(params, iters);
    DesignSpec {
        name: "CPU (host, measured)",
        technology: MemTechnology::Cpu,
        tech_nm: 45,
        coeff_bits: params.q_bits(),
        max_freq_mhz: None,
        latency_us,
        throughput_kntt_s: 1e3 / latency_us,
        energy_nj: latency_us * watts * 1e3, // W × µs → nJ
        area_mm2: None,
        note: "this repository's software NTT timed on the build host",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_measurement_is_sane() {
        let params = NttParams::dac_256_14bit().unwrap();
        let row = host_cpu_row(&params, 50, 10.0);
        // A 256-point NTT takes somewhere between 100 ns and 10 ms on any
        // machine this builds on.
        assert!(
            row.latency_us > 0.1 && row.latency_us < 10_000.0,
            "{}",
            row.latency_us
        );
        assert!(row.throughput_kntt_s > 0.0);
        assert!(row.tput_per_power() > 0.0);
    }

    #[test]
    fn throughput_is_latency_reciprocal() {
        let params = NttParams::new(64, 7681).unwrap();
        let row = host_cpu_row(&params, 20, 5.0);
        let recon = 1e3 / row.latency_us;
        assert!((row.throughput_kntt_s - recon).abs() < 1e-9);
    }
}
