//! Memory-footprint models behind the paper's Fig. 7.
//!
//! Fig. 7 compares the cells needed to compute a 32-bit, 128-point NTT:
//! BP-NTT needs 4 288 SRAM cells (134 rows × 32 columns), MeNTT needs
//! 16 640 cells (130 rows × 128 columns), and RM-NTT needs 524 288 ReRAM
//! cells (128 rows × 4 096 columns). Each model generalizes the paper's
//! numbers to arbitrary `(n, bitwidth)`.

/// A rows × columns footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Footprint {
    /// Design label.
    pub name: &'static str,
    /// Rows occupied.
    pub rows: usize,
    /// Columns occupied.
    pub cols: usize,
}

impl Footprint {
    /// Total memory cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

/// BP-NTT: one tile of `bitwidth` columns; `n` coefficient rows plus the
/// six intermediate rows (Fig. 5(a)).
#[must_use]
pub fn bp_ntt(n: usize, bitwidth: usize) -> Footprint {
    Footprint {
        name: "BP-NTT",
        rows: n + 6,
        cols: bitwidth,
    }
}

/// MeNTT: bit-serial, one coefficient per column, so `n` columns; per
/// column it keeps the `bitwidth`-bit operand plus two further operand
/// copies for its in-place butterfly dataflow and two transfer rows
/// (130 rows for 32-bit in the paper: 4 × 32 + 2).
#[must_use]
pub fn mentt(n: usize, bitwidth: usize) -> Footprint {
    Footprint {
        name: "MeNTT",
        rows: 4 * bitwidth + 2,
        cols: n,
    }
}

/// RM-NTT: vector–matrix formulation; the transform matrix is `n × n`
/// with each element in `bitwidth` bit-sliced columns.
#[must_use]
pub fn rm_ntt(n: usize, bitwidth: usize) -> Footprint {
    Footprint {
        name: "RM-NTT",
        rows: n,
        cols: n * bitwidth,
    }
}

/// The three designs at the figure's configuration, in the paper's order.
#[must_use]
pub fn fig7(n: usize, bitwidth: usize) -> Vec<Footprint> {
    vec![bp_ntt(n, bitwidth), mentt(n, bitwidth), rm_ntt(n, bitwidth)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_printed_numbers() {
        // 32-bit, 128-point — the figure's configuration.
        let bp = bp_ntt(128, 32);
        assert_eq!((bp.rows, bp.cols, bp.cells()), (134, 32, 4288));
        let me = mentt(128, 32);
        assert_eq!((me.rows, me.cols, me.cells()), (130, 128, 16640));
        let rm = rm_ntt(128, 32);
        assert_eq!((rm.rows, rm.cols, rm.cells()), (128, 4096, 524_288));
    }

    #[test]
    fn ordering_is_stable_across_configs() {
        for (n, w) in [(64usize, 16usize), (256, 16), (256, 32), (1024, 29)] {
            let f = fig7(n, w);
            assert!(
                f[0].cells() < f[1].cells(),
                "BP-NTT beats MeNTT at n={n} w={w}"
            );
            assert!(
                f[1].cells() < f[2].cells(),
                "MeNTT beats RM-NTT at n={n} w={w}"
            );
        }
    }

    #[test]
    fn paper_ratios() {
        // "at least 2.4×–4.6× lower area overhead compared to the
        // state-of-the-art in-memory designs" — at the Fig. 7 config the
        // cell ratios are 3.9× (MeNTT) and 122× (RM-NTT).
        let f = fig7(128, 32);
        let ratio_mentt = f[1].cells() as f64 / f[0].cells() as f64;
        assert!(ratio_mentt > 3.5 && ratio_mentt < 4.5);
        let ratio_rm = f[2].cells() as f64 / f[0].cells() as f64;
        assert!(ratio_rm > 100.0);
    }
}
