//! Comparison baselines for the BP-NTT evaluation.
//!
//! Table I of the paper compares BP-NTT against seven prior designs. The
//! paper itself takes those competitors' numbers from their publications
//! and projects them to 45 nm; this crate does the same:
//!
//! * [`spec`] — the Table-I schema (`DesignSpec`) with derived
//!   throughput-per-area and throughput-per-power;
//! * [`published`] — the seven baseline design points at 45 nm (MeNTT,
//!   CryptoPIM, RM-NTT, LEIA, Sapphire, an FPGA implementation, and a CPU);
//! * [`projection`] — first-order technology-node scaling used to justify
//!   the 45 nm projections;
//! * [`footprint`] — the memory-footprint models behind Fig. 7 (BP-NTT vs
//!   MeNTT vs RM-NTT for a 32-bit, 128-point NTT);
//! * [`bitserial`] — a *measured* bit-serial (Neural-Cache-style,
//!   transposed layout) modular-multiplication kernel running on the same
//!   SRAM simulator, used by the ablation study to quantify the paper's
//!   "half the shifts / bit-parallel beats bit-serial" arguments with real
//!   instruction counts rather than citations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitserial;
pub mod cpu_baseline;
pub mod footprint;
pub mod projection;
pub mod published;
pub mod spec;

pub use spec::{DesignSpec, MemTechnology};
