//! Validated NTT parameter sets.
//!
//! A negacyclic `N`-point NTT over `Z_q[x]/(x^N + 1)` exists when `q` is a
//! prime with `q ≡ 1 (mod 2N)`; the primitive `2N`-th root of unity `ψ`
//! then folds the negacyclic twist into the twiddle factors, which is the
//! formulation of the paper's Algorithm 1.
//!
//! The named constructors cover the workloads the paper cites:
//! CRYSTALS-Dilithium, Falcon, the 14-/16-bit 256-point comparison points of
//! Table I, and the three BKZ.qsieve HE security levels (1024-point with
//! 16-, 21-, and 29-bit moduli). CRYSTALS-Kyber's `q = 3329` does not admit
//! a full 256-point negacyclic transform (3329 ≢ 1 mod 512); its truncated
//! seven-layer variant lives in [`crate::incomplete`].

use crate::error::NttError;
use bpntt_modmath::primes::{find_ntt_prime_high, is_prime};
use bpntt_modmath::roots::{is_primitive_root_of_order, primitive_nth_root};
use bpntt_modmath::zq::{inv_mod, mul_mod};

/// A validated negacyclic NTT parameter set.
///
/// Invariants established at construction: `n` is a power of two ≥ 2, `q`
/// is prime, `q ≡ 1 (mod 2n)`, `psi` is a primitive `2n`-th root of unity,
/// and all stored inverses are exact.
///
/// # Example
///
/// ```
/// use bpntt_ntt::NttParams;
///
/// let p = NttParams::new(512, 12289)?; // Falcon-512
/// assert_eq!(p.q_bits(), 14);
/// assert_eq!(bpntt_modmath::zq::pow_mod(p.psi(), 1024, 12289), 1);
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NttParams {
    n: usize,
    q: u64,
    psi: u64,
    psi_inv: u64,
    omega: u64,
    omega_inv: u64,
    n_inv: u64,
    log2_n: u32,
}

impl NttParams {
    /// Builds a parameter set for an `n`-point negacyclic NTT modulo `q`.
    ///
    /// # Errors
    ///
    /// * [`NttError::InvalidLength`] if `n` is not a power of two ≥ 2.
    /// * [`NttError::ModulusNotPrime`] if `q` is composite.
    /// * [`NttError::UnsupportedModulus`] if `q ≢ 1 (mod 2n)`.
    pub fn new(n: usize, q: u64) -> Result<Self, NttError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(NttError::InvalidLength { n });
        }
        if !is_prime(q) {
            return Err(NttError::ModulusNotPrime { q });
        }
        let two_n = 2 * n as u64;
        if !(q - 1).is_multiple_of(two_n) {
            return Err(NttError::UnsupportedModulus { n, q });
        }
        let psi = primitive_nth_root(two_n, q)?;
        debug_assert!(is_primitive_root_of_order(psi, two_n, q));
        let psi_inv = inv_mod(psi, q)?;
        let omega = mul_mod(psi, psi, q);
        let omega_inv = inv_mod(omega, q)?;
        let n_inv = inv_mod(n as u64, q)?;
        Ok(NttParams {
            n,
            q,
            psi,
            psi_inv,
            omega,
            omega_inv,
            n_inv,
            log2_n: n.trailing_zeros(),
        })
    }

    /// The transform length `N`.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The prime modulus `q`.
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The primitive `2N`-th root of unity `ψ` (negacyclic twist).
    #[inline]
    #[must_use]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// `ψ⁻¹ mod q`.
    #[inline]
    #[must_use]
    pub fn psi_inv(&self) -> u64 {
        self.psi_inv
    }

    /// The primitive `N`-th root of unity `ω = ψ²`.
    #[inline]
    #[must_use]
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// `ω⁻¹ mod q`.
    #[inline]
    #[must_use]
    pub fn omega_inv(&self) -> u64 {
        self.omega_inv
    }

    /// `N⁻¹ mod q`, the inverse-transform scale factor.
    #[inline]
    #[must_use]
    pub fn n_inv(&self) -> u64 {
        self.n_inv
    }

    /// `log₂ N`.
    #[inline]
    #[must_use]
    pub fn log2_n(&self) -> u32 {
        self.log2_n
    }

    /// Number of bits needed to store `q` (e.g. 14 for Falcon's 12289).
    #[inline]
    #[must_use]
    pub fn q_bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }

    /// Validates that `a` has length `N` with all coefficients `< q`.
    ///
    /// # Errors
    ///
    /// [`NttError::LengthMismatch`] or [`NttError::UnreducedCoefficient`].
    pub fn validate_slice(&self, a: &[u64]) -> Result<(), NttError> {
        if a.len() != self.n {
            return Err(NttError::LengthMismatch {
                expected: self.n,
                actual: a.len(),
            });
        }
        for (index, &value) in a.iter().enumerate() {
            if value >= self.q {
                return Err(NttError::UnreducedCoefficient {
                    index,
                    value,
                    q: self.q,
                });
            }
        }
        Ok(())
    }

    // ---- Named parameter sets -------------------------------------------

    /// CRYSTALS-Dilithium: `N = 256`, `q = 8 380 417` (23-bit).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` keeps the constructor uniform.
    pub fn dilithium() -> Result<Self, NttError> {
        Self::new(256, 8_380_417)
    }

    /// Falcon-512: `N = 512`, `q = 12 289` (14-bit).
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn falcon512() -> Result<Self, NttError> {
        Self::new(512, 12_289)
    }

    /// Falcon-1024: `N = 1024`, `q = 12 289` (14-bit).
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn falcon1024() -> Result<Self, NttError> {
        Self::new(1024, 12_289)
    }

    /// The paper's Table I comparison point: 256-point, 14-bit modulus
    /// (`q = 12 289`, the same prime MeNTT and the ASIC baselines use).
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn dac_256_14bit() -> Result<Self, NttError> {
        Self::new(256, 12_289)
    }

    /// HE level 1 under BKZ.qsieve: 1024-point, 16-bit modulus
    /// (`q = 40 961`, the largest 16-bit prime ≡ 1 mod 2048).
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn he_1024_16bit() -> Result<Self, NttError> {
        Self::new(1024, 40_961)
    }

    /// HE level 2 under BKZ.qsieve: 1024-point, 21-bit modulus.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn he_1024_21bit() -> Result<Self, NttError> {
        let q = find_ntt_prime_high(21, 2048)?;
        Self::new(1024, q)
    }

    /// HE level 3 under BKZ.qsieve: 1024-point, 29-bit modulus.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn he_1024_29bit() -> Result<Self, NttError> {
        let q = find_ntt_prime_high(29, 2048)?;
        Self::new(1024, q)
    }

    /// All named parameter sets with human-readable labels, in the order
    /// they appear in the paper's motivation.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn all_standard() -> Vec<(&'static str, NttParams)> {
        let sets: [(&'static str, fn() -> Result<NttParams, NttError>); 7] = [
            ("dilithium-256/23b", NttParams::dilithium),
            ("falcon-512/14b", NttParams::falcon512),
            ("falcon-1024/14b", NttParams::falcon1024),
            ("dac-256/14b", NttParams::dac_256_14bit),
            ("he-1024/16b", NttParams::he_1024_16bit),
            ("he-1024/21b", NttParams::he_1024_21bit),
            ("he-1024/29b", NttParams::he_1024_29bit),
        ];
        sets.into_iter()
            .map(|(name, ctor)| (name, ctor().expect("standard parameter sets are valid")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_modmath::zq::pow_mod;

    #[test]
    fn standard_sets_validate() {
        for (name, p) in NttParams::all_standard() {
            assert!(p.n().is_power_of_two(), "{name}");
            assert_eq!((p.modulus() - 1) % (2 * p.n() as u64), 0, "{name}");
            // ψ has exact order 2N.
            assert_eq!(pow_mod(p.psi(), 2 * p.n() as u64, p.modulus()), 1, "{name}");
            assert_eq!(
                pow_mod(p.psi(), p.n() as u64, p.modulus()),
                p.modulus() - 1,
                "{name}: ψ^N = −1"
            );
            // Inverses are exact.
            assert_eq!(mul_mod(p.psi(), p.psi_inv(), p.modulus()), 1, "{name}");
            assert_eq!(mul_mod(p.omega(), p.omega_inv(), p.modulus()), 1, "{name}");
            assert_eq!(mul_mod(p.n() as u64, p.n_inv(), p.modulus()), 1, "{name}");
            assert_eq!(p.omega(), mul_mod(p.psi(), p.psi(), p.modulus()), "{name}");
        }
    }

    #[test]
    fn q_bits_match_paper_claims() {
        assert_eq!(NttParams::dilithium().unwrap().q_bits(), 23);
        assert_eq!(NttParams::dac_256_14bit().unwrap().q_bits(), 14);
        assert_eq!(NttParams::he_1024_16bit().unwrap().q_bits(), 16);
        assert_eq!(NttParams::he_1024_21bit().unwrap().q_bits(), 21);
        assert_eq!(NttParams::he_1024_29bit().unwrap().q_bits(), 29);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            NttParams::new(100, 12289),
            Err(NttError::InvalidLength { .. })
        ));
        assert!(matches!(
            NttParams::new(0, 12289),
            Err(NttError::InvalidLength { .. })
        ));
        assert!(matches!(
            NttParams::new(256, 12288),
            Err(NttError::ModulusNotPrime { .. })
        ));
        // Kyber's q: prime but 3329 ≢ 1 (mod 512).
        assert!(matches!(
            NttParams::new(256, 3329),
            Err(NttError::UnsupportedModulus { .. })
        ));
    }

    #[test]
    fn validate_slice_flags_problems() {
        let p = NttParams::dac_256_14bit().unwrap();
        assert!(p.validate_slice(&vec![0; 256]).is_ok());
        assert!(matches!(
            p.validate_slice(&vec![0; 255]),
            Err(NttError::LengthMismatch { .. })
        ));
        let mut bad = vec![0; 256];
        bad[7] = 12_289;
        assert!(matches!(
            p.validate_slice(&bad),
            Err(NttError::UnreducedCoefficient { index: 7, .. })
        ));
    }

    #[test]
    fn small_transforms_exist() {
        // Tiny parameter sets used heavily by unit tests elsewhere.
        for n in [2usize, 4, 8, 16, 32] {
            let q = bpntt_modmath::primes::find_ntt_prime(14, 2 * n as u64).unwrap();
            let p = NttParams::new(n, q).unwrap();
            assert_eq!(pow_mod(p.psi(), n as u64, q), q - 1);
        }
    }
}
