//! In-place Gentleman–Sande inverse NTT.
//!
//! Consumes bit-reversed input (the forward transform's output) and produces
//! natural-order coefficients. Each stage is the exact inverse of the
//! corresponding Cooley–Tukey stage — the butterfly `(u, v) → (u+v, ζ⁻¹(u−v))`
//! unwinds `(a, b) → (a+ζb, a−ζb)` up to a factor of 2, and the aggregated
//! `2^log₂N` is removed by the final `N⁻¹` scaling, as in the paper's
//! description of INTT.

use crate::error::NttError;
use crate::params::NttParams;
use crate::twiddle::TwiddleTable;
use bpntt_modmath::shoup::mul_mod_shoup;
use bpntt_modmath::zq::{add_mod, mul_mod, sub_mod};

/// Runs the inverse negacyclic NTT in place.
///
/// `a` must hold `N` reduced values in bit-reversed order; on return it
/// holds the natural-order coefficients.
///
/// # Errors
///
/// Returns a validation error if `a` has the wrong length or unreduced
/// values.
///
/// # Example
///
/// ```
/// use bpntt_ntt::{forward, inverse, NttParams, TwiddleTable};
///
/// let p = NttParams::falcon512()?;
/// let t = TwiddleTable::new(&p);
/// let mut a = vec![7u64; 512];
/// forward::ntt_in_place(&p, &t, &mut a)?;
/// inverse::intt_in_place(&p, &t, &mut a)?;
/// assert_eq!(a, vec![7u64; 512]);
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
pub fn intt_in_place(
    params: &NttParams,
    twiddles: &TwiddleTable,
    a: &mut [u64],
) -> Result<(), NttError> {
    params.validate_slice(a)?;
    intt_in_place_unchecked(params, twiddles, a);
    Ok(())
}

/// Inverse NTT without input validation (callers guarantee reduced, `N`-long
/// input). Used on hot paths and by the instrumented twin.
///
/// The twiddle multiply and the final `N⁻¹` scaling use Harvey's Shoup
/// formulation (precomputed quotients from the [`TwiddleTable`]) whenever
/// the modulus permits.
pub fn intt_in_place_unchecked(params: &NttParams, twiddles: &TwiddleTable, a: &mut [u64]) {
    let n = params.n();
    let q = params.modulus();
    let inv_zetas = twiddles.inv_zetas();
    if twiddles.has_shoup() {
        let inv_zetas_shoup = twiddles.inv_zetas_shoup();
        let mut len = 1;
        while len < n {
            let k_base = n / (2 * len);
            let mut idx = 0;
            let mut b = 0;
            while idx < n {
                let (z_inv, z_inv_shoup) = (inv_zetas[k_base + b], inv_zetas_shoup[k_base + b]);
                for j in idx..idx + len {
                    let u = a[j];
                    let v = a[j + len];
                    a[j] = add_mod(u, v, q);
                    a[j + len] = mul_mod_shoup(z_inv, z_inv_shoup, sub_mod(u, v, q), q);
                }
                idx += 2 * len;
                b += 1;
            }
            len *= 2;
        }
        let (n_inv, n_inv_shoup) = (params.n_inv(), twiddles.n_inv_shoup());
        for x in a.iter_mut() {
            *x = mul_mod_shoup(n_inv, n_inv_shoup, *x, q);
        }
        return;
    }
    let mut len = 1;
    while len < n {
        // The CT stage with this `len` consumed zetas[k] for
        // k = n/(2len) + b over blocks b; unwind with the same indices.
        let k_base = n / (2 * len);
        let mut idx = 0;
        let mut b = 0;
        while idx < n {
            let z_inv = inv_zetas[k_base + b];
            for j in idx..idx + len {
                let u = a[j];
                let v = a[j + len];
                a[j] = add_mod(u, v, q);
                a[j + len] = mul_mod(z_inv, sub_mod(u, v, q), q);
            }
            idx += 2 * len;
            b += 1;
        }
        len *= 2;
    }
    let n_inv = params.n_inv();
    for x in a.iter_mut() {
        *x = mul_mod(*x, n_inv, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ntt_in_place;

    #[test]
    fn roundtrip_all_standard_sets() {
        for (name, p) in NttParams::all_standard() {
            let t = TwiddleTable::new(&p);
            let orig: Vec<u64> = (0..p.n() as u64)
                .map(|i| i.wrapping_mul(6364136223846793005) % p.modulus())
                .collect();
            let mut a = orig.clone();
            ntt_in_place(&p, &t, &mut a).unwrap();
            assert_ne!(a, orig, "{name}: transform should not be identity");
            intt_in_place(&p, &t, &mut a).unwrap();
            assert_eq!(a, orig, "{name}: roundtrip failed");
        }
    }

    #[test]
    fn roundtrip_reverse_order() {
        // INTT then NTT is also the identity (both are bijections on Z_q^N).
        let p = NttParams::new(32, 12289).unwrap();
        let t = TwiddleTable::new(&p);
        let orig: Vec<u64> = (0..32u64).map(|i| (i * i * 37) % 12289).collect();
        let mut a = orig.clone();
        intt_in_place(&p, &t, &mut a).unwrap();
        ntt_in_place(&p, &t, &mut a).unwrap();
        assert_eq!(a, orig);
    }

    #[test]
    fn inverse_of_all_ones_is_delta() {
        let p = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&p);
        let mut a = vec![1u64; 8];
        intt_in_place(&p, &t, &mut a).unwrap();
        let mut delta = vec![0u64; 8];
        delta[0] = 1;
        assert_eq!(a, delta);
    }

    #[test]
    fn rejects_invalid_input() {
        let p = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&p);
        let mut wrong = vec![0u64; 16];
        assert!(intt_in_place(&p, &t, &mut wrong).is_err());
    }
}
