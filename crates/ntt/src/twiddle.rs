//! Twiddle-factor tables in bit-reversed order.
//!
//! The in-place Cooley–Tukey NTT (paper Algorithm 1) consumes the powers of
//! `ψ` in bit-reversed index order: the `k`-th butterfly group uses
//! `ζ[k] = ψ^brv(k)`. Folding `ψ` (rather than `ω`) into the table merges
//! the negacyclic pre-twist into the transform, so no separate scaling pass
//! is needed — the standard Kyber/Dilithium formulation.

use crate::params::NttParams;
use bpntt_modmath::bits::bit_reverse;
use bpntt_modmath::shoup::shoup_precompute;
use bpntt_modmath::zq::{inv_mod, mul_mod};

/// Pre-computed twiddle factors for one parameter set.
///
/// `zetas[k] = ψ^brv(k) mod q` for `k ∈ 0..N` (index 0 holds `ψ⁰ = 1` and
/// is never consumed by the transform loops, matching the paper's `++k`
/// indexing), and `inv_zetas[k] = zetas[k]⁻¹ mod q`.
///
/// # Example
///
/// ```
/// use bpntt_ntt::{NttParams, TwiddleTable};
///
/// let p = NttParams::dac_256_14bit()?;
/// let t = TwiddleTable::new(&p);
/// assert_eq!(t.zetas()[0], 1);
/// assert_eq!(t.zetas()[1], bpntt_modmath::zq::pow_mod(p.psi(), 128, p.modulus()));
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwiddleTable {
    zetas: Vec<u64>,
    inv_zetas: Vec<u64>,
    /// Harvey-style precomputed quotients `⌊ζ·2⁶⁴/q⌋` (empty when the
    /// modulus is too large for Shoup multiplication).
    zetas_shoup: Vec<u64>,
    inv_zetas_shoup: Vec<u64>,
    n_inv_shoup: u64,
    q: u64,
}

impl TwiddleTable {
    /// Builds the forward and inverse tables for `params`.
    #[must_use]
    pub fn new(params: &NttParams) -> Self {
        let n = params.n();
        let q = params.modulus();
        let bits = params.log2_n();
        let mut zetas = Vec::with_capacity(n);
        let mut inv_zetas = Vec::with_capacity(n);
        // Iteratively exponentiate: psi_pows[e] = ψ^e for e in 0..n.
        let mut psi_pows = Vec::with_capacity(n);
        let mut acc = 1u64;
        for _ in 0..n {
            psi_pows.push(acc);
            acc = mul_mod(acc, params.psi(), q);
        }
        for k in 0..n {
            let e = bit_reverse(k as u64, bits) as usize;
            let z = psi_pows[e];
            zetas.push(z);
            inv_zetas.push(inv_mod(z, q).expect("ψ powers are invertible in a field"));
        }
        // Precompute the Shoup quotients for the hot transform loops
        // (valid — and used — only when q < 2⁶³; see `has_shoup`).
        let (zetas_shoup, inv_zetas_shoup, n_inv_shoup) = if q < 1 << 63 {
            (
                zetas.iter().map(|&z| shoup_precompute(z, q)).collect(),
                inv_zetas.iter().map(|&z| shoup_precompute(z, q)).collect(),
                shoup_precompute(params.n_inv(), q),
            )
        } else {
            (Vec::new(), Vec::new(), 0)
        };
        TwiddleTable {
            zetas,
            inv_zetas,
            zetas_shoup,
            inv_zetas_shoup,
            n_inv_shoup,
            q,
        }
    }

    /// True when Shoup quotients were precomputed (`q < 2⁶³`).
    #[inline]
    #[must_use]
    pub fn has_shoup(&self) -> bool {
        !self.zetas_shoup.is_empty()
    }

    /// Shoup quotients of the forward twiddles (empty iff
    /// [`Self::has_shoup`] is false).
    #[inline]
    #[must_use]
    pub fn zetas_shoup(&self) -> &[u64] {
        &self.zetas_shoup
    }

    /// Shoup quotients of the inverse twiddles.
    #[inline]
    #[must_use]
    pub fn inv_zetas_shoup(&self) -> &[u64] {
        &self.inv_zetas_shoup
    }

    /// Shoup quotient of `N⁻¹` (the inverse transform's final scaling).
    #[inline]
    #[must_use]
    pub fn n_inv_shoup(&self) -> u64 {
        self.n_inv_shoup
    }

    /// Forward twiddles `ζ[k] = ψ^brv(k)`.
    #[inline]
    #[must_use]
    pub fn zetas(&self) -> &[u64] {
        &self.zetas
    }

    /// Inverse twiddles `ζ[k]⁻¹`.
    #[inline]
    #[must_use]
    pub fn inv_zetas(&self) -> &[u64] {
        &self.inv_zetas
    }

    /// The modulus the table was built for.
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_modmath::zq::pow_mod;

    #[test]
    fn zeta_table_matches_direct_exponentiation() {
        let p = NttParams::new(16, 97).unwrap(); // 97 ≡ 1 (mod 32)
        let t = TwiddleTable::new(&p);
        for k in 0..16u64 {
            let e = bit_reverse(k, 4);
            assert_eq!(t.zetas()[k as usize], pow_mod(p.psi(), e, 97));
        }
    }

    #[test]
    fn inverse_table_is_elementwise_inverse() {
        let p = NttParams::dac_256_14bit().unwrap();
        let t = TwiddleTable::new(&p);
        for k in 0..p.n() {
            assert_eq!(mul_mod(t.zetas()[k], t.inv_zetas()[k], p.modulus()), 1);
        }
    }

    #[test]
    fn first_entries() {
        let p = NttParams::falcon512().unwrap();
        let t = TwiddleTable::new(&p);
        assert_eq!(t.zetas()[0], 1);
        // zetas[1] = ψ^brv(1) = ψ^(N/2), which squares to ψ^N = −1.
        let z1 = t.zetas()[1];
        assert_eq!(mul_mod(z1, z1, p.modulus()), p.modulus() - 1);
    }
}
