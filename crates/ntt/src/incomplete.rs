//! Truncated ("incomplete") NTT with small-degree base multiplication.
//!
//! CRYSTALS-Kyber's `q = 3329` satisfies only `q ≡ 1 (mod 256)`, so a full
//! 256-point negacyclic NTT does not exist; Kyber instead stops the
//! Cooley–Tukey recursion after 7 layers and multiplies degree-1 residue
//! polynomials directly ("basemul"). The BP-NTT paper lists Kyber among its
//! target workloads; this module supplies that transform — generically, for
//! any number of layers — and validates it against schoolbook negacyclic
//! multiplication.

use crate::error::NttError;
use bpntt_modmath::bits::bit_reverse;
use bpntt_modmath::primes::is_prime;
use bpntt_modmath::roots::primitive_nth_root;
use bpntt_modmath::zq::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod};

/// Parameters for an `N`-point incomplete NTT with `L` Cooley–Tukey layers.
///
/// After `L` layers, `x^N + 1` splits into `2^L` factors
/// `x^d − γ_i` of degree `d = N / 2^L`, where `γ_i = ψ^(2·brv_L(i)+1)` and
/// `ψ` is a primitive `2^(L+1)`-th root of unity. Kyber is `N = 256`,
/// `L = 7`, `d = 2`.
///
/// # Example
///
/// ```
/// use bpntt_ntt::incomplete::IncompleteNtt;
///
/// let kyber = IncompleteNtt::kyber()?;
/// assert_eq!(kyber.residue_degree(), 2);
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncompleteNtt {
    n: usize,
    q: u64,
    layers: u32,
    psi: u64,
    /// `ζ[k] = ψ^brv_L(k)` for `k ∈ 0..2^L`.
    zetas: Vec<u64>,
    inv_zetas: Vec<u64>,
    /// `γ_i = ψ^(2·brv_L(i)+1)` — the twist of residue block `i`.
    gammas: Vec<u64>,
    /// `(2^L)⁻¹ mod q` — inverse-transform scale.
    scale_inv: u64,
}

impl IncompleteNtt {
    /// Builds an incomplete NTT over `Z_q[x]/(x^n + 1)` with `layers`
    /// butterfly layers.
    ///
    /// # Errors
    ///
    /// * [`NttError::InvalidLength`] if `n` is not a power of two or
    ///   `layers` does not leave a residue degree ≥ 1.
    /// * [`NttError::ModulusNotPrime`] if `q` is composite.
    /// * [`NttError::UnsupportedModulus`] if `q ≢ 1 (mod 2^(layers+1))`.
    pub fn new(n: usize, q: u64, layers: u32) -> Result<Self, NttError> {
        let order = 1u64 << (layers.min(62) + 1);
        Self::validate_config(n, q, layers)?;
        let psi = primitive_nth_root(order, q)?;
        Self::from_psi(n, q, layers, psi)
    }

    /// Like [`Self::new`] but with a caller-chosen `ψ` (must be a primitive
    /// `2^(layers+1)`-th root of unity), so standardized constants — like
    /// Kyber's `ψ = 17` — are reproduced exactly.
    ///
    /// # Errors
    ///
    /// As [`Self::new`], plus [`NttError::UnsupportedModulus`] when `psi`
    /// does not have the required order.
    pub fn new_with_psi(n: usize, q: u64, layers: u32, psi: u64) -> Result<Self, NttError> {
        Self::validate_config(n, q, layers)?;
        let order = 1u64 << (layers + 1);
        if !bpntt_modmath::roots::is_primitive_root_of_order(psi, order, q) {
            return Err(NttError::UnsupportedModulus { n, q });
        }
        Self::from_psi(n, q, layers, psi)
    }

    fn validate_config(n: usize, q: u64, layers: u32) -> Result<(), NttError> {
        if n < 2 || !n.is_power_of_two() || layers == 0 || layers > 62 || (1usize << layers) > n {
            return Err(NttError::InvalidLength { n });
        }
        if !is_prime(q) {
            return Err(NttError::ModulusNotPrime { q });
        }
        let order = 1u64 << (layers + 1);
        if !(q - 1).is_multiple_of(order) {
            return Err(NttError::UnsupportedModulus { n, q });
        }
        Ok(())
    }

    fn from_psi(n: usize, q: u64, layers: u32, psi: u64) -> Result<Self, NttError> {
        let groups = 1usize << layers;
        let mut zetas = Vec::with_capacity(groups);
        let mut inv_zetas = Vec::with_capacity(groups);
        let mut gammas = Vec::with_capacity(groups);
        for k in 0..groups {
            let e = bit_reverse(k as u64, layers);
            let z = pow_mod(psi, e, q);
            zetas.push(z);
            inv_zetas.push(inv_mod(z, q)?);
            gammas.push(pow_mod(psi, 2 * e + 1, q));
        }
        let scale_inv = inv_mod(groups as u64, q)?;
        Ok(IncompleteNtt {
            n,
            q,
            layers,
            psi,
            zetas,
            inv_zetas,
            gammas,
            scale_inv,
        })
    }

    /// The Kyber parameter set: `N = 256`, `q = 3329`, 7 layers, `ψ = 17`
    /// (the constant fixed by the FIPS 203 specification).
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn kyber() -> Result<Self, NttError> {
        Self::new_with_psi(256, 3329, 7, 17)
    }

    /// Transform length `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus `q`.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Degree of each residue polynomial, `d = N / 2^L` (2 for Kyber).
    #[must_use]
    pub fn residue_degree(&self) -> usize {
        self.n >> self.layers
    }

    /// The primitive `2^(L+1)`-th root `ψ` (17 for Kyber).
    #[must_use]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    fn validate(&self, a: &[u64]) -> Result<(), NttError> {
        if a.len() != self.n {
            return Err(NttError::LengthMismatch {
                expected: self.n,
                actual: a.len(),
            });
        }
        for (index, &value) in a.iter().enumerate() {
            if value >= self.q {
                return Err(NttError::UnreducedCoefficient {
                    index,
                    value,
                    q: self.q,
                });
            }
        }
        Ok(())
    }

    /// In-place forward incomplete NTT (L layers of CT butterflies).
    ///
    /// # Errors
    ///
    /// Returns a validation error on bad input.
    pub fn forward(&self, a: &mut [u64]) -> Result<(), NttError> {
        self.validate(a)?;
        let q = self.q;
        let mut k = 0usize;
        let mut len = self.n / 2;
        let len_min = self.residue_degree();
        while len >= len_min {
            let mut idx = 0;
            while idx < self.n {
                k += 1;
                let z = self.zetas[k];
                for j in idx..idx + len {
                    let t = mul_mod(z, a[j + len], q);
                    a[j + len] = sub_mod(a[j], t, q);
                    a[j] = add_mod(a[j], t, q);
                }
                idx += 2 * len;
            }
            len /= 2;
        }
        Ok(())
    }

    /// In-place inverse incomplete NTT (unwinds [`Self::forward`], then
    /// scales by `2^-L`).
    ///
    /// # Errors
    ///
    /// Returns a validation error on bad input.
    pub fn inverse(&self, a: &mut [u64]) -> Result<(), NttError> {
        self.validate(a)?;
        let q = self.q;
        let groups = 1usize << self.layers;
        let mut len = self.residue_degree();
        while len <= self.n / 2 {
            let k_base = self.n / (2 * len);
            let mut idx = 0;
            let mut b = 0;
            while idx < self.n {
                let z_inv = self.inv_zetas[k_base + b];
                for j in idx..idx + len {
                    let u = a[j];
                    let v = a[j + len];
                    a[j] = add_mod(u, v, q);
                    a[j + len] = mul_mod(z_inv, sub_mod(u, v, q), q);
                }
                idx += 2 * len;
                b += 1;
            }
            len *= 2;
        }
        let _ = groups;
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.scale_inv, q);
        }
        Ok(())
    }

    /// Multiplies two transformed vectors block-wise: residue block `i`
    /// (length `d`) is multiplied modulo `x^d − γ_i`.
    ///
    /// # Errors
    ///
    /// Returns a validation error on bad input.
    pub fn basemul(&self, a: &[u64], b: &[u64]) -> Result<Vec<u64>, NttError> {
        self.validate(a)?;
        self.validate(b)?;
        let q = self.q;
        let d = self.residue_degree();
        let mut c = vec![0u64; self.n];
        for (i, gamma) in self.gammas.iter().enumerate() {
            let base = i * d;
            for x in 0..d {
                for y in 0..d {
                    let prod = mul_mod(a[base + x], b[base + y], q);
                    if x + y < d {
                        c[base + x + y] = add_mod(c[base + x + y], prod, q);
                    } else {
                        // x^d ≡ γ_i in this block.
                        let wrapped = mul_mod(prod, *gamma, q);
                        c[base + x + y - d] = add_mod(c[base + x + y - d], wrapped, q);
                    }
                }
            }
        }
        Ok(c)
    }

    /// Full negacyclic product via forward / basemul / inverse.
    ///
    /// # Errors
    ///
    /// Returns a validation error on bad input.
    pub fn polymul(&self, a: &[u64], b: &[u64]) -> Result<Vec<u64>, NttError> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa)?;
        self.forward(&mut fb)?;
        let mut fc = self.basemul(&fa, &fb)?;
        self.inverse(&mut fc)?;
        Ok(fc)
    }
}

/// Schoolbook negacyclic multiplication modulo `x^n + 1` for arbitrary odd
/// prime `q` (no root-of-unity requirement) — oracle for the incomplete NTT.
#[must_use]
pub fn negacyclic_schoolbook(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    let mut c = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = mul_mod(ai, bj, q);
            let k = i + j;
            if k < n {
                c[k] = add_mod(c[k], prod, q);
            } else {
                c[k - n] = sub_mod(c[k - n], prod, q);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    #[test]
    fn kyber_constants() {
        let k = IncompleteNtt::kyber().unwrap();
        assert_eq!(k.psi(), 17, "Kyber's documented 256-th root of unity");
        assert_eq!(k.residue_degree(), 2);
        assert_eq!(pow_mod(17, 128, 3329), 3328, "ψ^128 = −1");
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let k = IncompleteNtt::kyber().unwrap();
        let orig = pseudo(256, 3329, 77);
        let mut a = orig.clone();
        k.forward(&mut a).unwrap();
        assert_ne!(a, orig);
        k.inverse(&mut a).unwrap();
        assert_eq!(a, orig);
    }

    #[test]
    fn kyber_polymul_matches_schoolbook() {
        let k = IncompleteNtt::kyber().unwrap();
        let a = pseudo(256, 3329, 1);
        let b = pseudo(256, 3329, 2);
        assert_eq!(
            k.polymul(&a, &b).unwrap(),
            negacyclic_schoolbook(&a, &b, 3329)
        );
    }

    #[test]
    fn deeper_truncations_work() {
        // N=64 with 3, 4, 5 layers over a 3329-like modulus.
        for layers in [3u32, 4, 5] {
            let t = IncompleteNtt::new(64, 3329, layers).unwrap();
            let a = pseudo(64, 3329, u64::from(layers));
            let b = pseudo(64, 3329, u64::from(layers) + 100);
            assert_eq!(
                t.polymul(&a, &b).unwrap(),
                negacyclic_schoolbook(&a, &b, 3329),
                "layers={layers}"
            );
        }
    }

    #[test]
    fn rejects_unsupported_configs() {
        assert!(IncompleteNtt::new(256, 3329, 0).is_err());
        assert!(IncompleteNtt::new(100, 3329, 2).is_err());
        assert!(IncompleteNtt::new(256, 3330, 7).is_err());
        // 3329 ≡ 1 (mod 256) but ≢ 1 (mod 512): 8 layers need a 512-th root.
        assert!(IncompleteNtt::new(256, 3329, 8).is_err());
    }
}
