//! Error type for NTT parameter validation and transform entry points.

use bpntt_modmath::ModMathError;
use std::error::Error;
use std::fmt;

/// Errors produced when building NTT parameters or running transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NttError {
    /// The transform length must be a power of two, at least 2.
    InvalidLength {
        /// The offending length.
        n: usize,
    },
    /// The modulus must be prime for `Z_q` to be a field.
    ModulusNotPrime {
        /// The offending modulus.
        q: u64,
    },
    /// A negacyclic `N`-point NTT needs `q ≡ 1 (mod 2N)`.
    UnsupportedModulus {
        /// The transform length.
        n: usize,
        /// The offending modulus.
        q: u64,
    },
    /// An input slice had the wrong length for the parameter set.
    LengthMismatch {
        /// Expected length (the parameter set's `N`).
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// A coefficient was not reduced modulo `q`.
    UnreducedCoefficient {
        /// Index of the offending coefficient.
        index: usize,
        /// Its value.
        value: u64,
        /// The modulus.
        q: u64,
    },
    /// An underlying modular-arithmetic failure (root search, inversion).
    Math(ModMathError),
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::InvalidLength { n } => {
                write!(f, "transform length {n} is not a power of two ≥ 2")
            }
            NttError::ModulusNotPrime { q } => write!(f, "modulus {q} is not prime"),
            NttError::UnsupportedModulus { n, q } => {
                write!(
                    f,
                    "modulus {q} does not support a negacyclic {n}-point NTT (need q ≡ 1 mod {})",
                    2 * n
                )
            }
            NttError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} coefficients, got {actual}")
            }
            NttError::UnreducedCoefficient { index, value, q } => {
                write!(
                    f,
                    "coefficient {value} at index {index} is not reduced modulo {q}"
                )
            }
            NttError::Math(e) => write!(f, "modular arithmetic error: {e}"),
        }
    }
}

impl Error for NttError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NttError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModMathError> for NttError {
    fn from(e: ModMathError) -> Self {
        NttError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = NttError::UnsupportedModulus { n: 256, q: 3329 };
        assert!(e.to_string().contains("512"));
        let e = NttError::Math(ModMathError::EvenModulus { modulus: 4 });
        assert!(e.source().is_some());
    }
}
