//! Negacyclic polynomial multiplication in `Z_q[x]/(x^N + 1)`.
//!
//! [`polymul_ntt`] is the `O(N log N)` pipeline the paper accelerates
//! (`ab = NTT⁻¹(NTT(a) ∘ NTT(b))`); [`polymul_schoolbook`] is the `O(N²)`
//! ground truth used to validate it and every accelerator run.

use crate::error::NttError;
use crate::forward::ntt_in_place;
use crate::inverse::intt_in_place;
use crate::params::NttParams;
use crate::twiddle::TwiddleTable;
use bpntt_modmath::zq::{add_mod, mul_mod, sub_mod};

/// Schoolbook negacyclic multiplication: exact `O(N²)` reference.
///
/// `c_k = Σ_{i+j=k} a_i·b_j − Σ_{i+j=k+N} a_i·b_j (mod q)` — the wrap-around
/// terms pick up the `x^N = −1` sign.
///
/// # Errors
///
/// Returns a validation error if either input has the wrong length or
/// unreduced coefficients.
pub fn polymul_schoolbook(params: &NttParams, a: &[u64], b: &[u64]) -> Result<Vec<u64>, NttError> {
    params.validate_slice(a)?;
    params.validate_slice(b)?;
    let n = params.n();
    let q = params.modulus();
    let mut c = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = mul_mod(ai, bj, q);
            let k = i + j;
            if k < n {
                c[k] = add_mod(c[k], prod, q);
            } else {
                c[k - n] = sub_mod(c[k - n], prod, q);
            }
        }
    }
    Ok(c)
}

/// Element-wise product of two NTT-domain vectors.
///
/// # Errors
///
/// Returns a validation error on length/reduction mismatches.
pub fn pointwise(params: &NttParams, a: &[u64], b: &[u64]) -> Result<Vec<u64>, NttError> {
    params.validate_slice(a)?;
    params.validate_slice(b)?;
    let q = params.modulus();
    Ok(a.iter().zip(b).map(|(&x, &y)| mul_mod(x, y, q)).collect())
}

/// NTT-based negacyclic multiplication: `NTT⁻¹(NTT(a) ∘ NTT(b))`.
///
/// # Errors
///
/// Returns a validation error on length/reduction mismatches.
///
/// # Example
///
/// ```
/// use bpntt_ntt::{polymul, NttParams};
///
/// let p = NttParams::new(8, 97)?;
/// let a = vec![1, 2, 0, 0, 0, 0, 0, 0]; // 1 + 2x
/// let b = vec![3, 1, 0, 0, 0, 0, 0, 0]; // 3 + x
/// let c = polymul::polymul_ntt(&p, &a, &b)?;
/// assert_eq!(&c[..3], &[3, 7, 2]); // 3 + 7x + 2x²
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
pub fn polymul_ntt(params: &NttParams, a: &[u64], b: &[u64]) -> Result<Vec<u64>, NttError> {
    let twiddles = TwiddleTable::new(params);
    polymul_ntt_with(params, &twiddles, a, b)
}

/// NTT-based multiplication reusing a pre-built twiddle table.
///
/// # Errors
///
/// Returns a validation error on length/reduction mismatches.
pub fn polymul_ntt_with(
    params: &NttParams,
    twiddles: &TwiddleTable,
    a: &[u64],
    b: &[u64],
) -> Result<Vec<u64>, NttError> {
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    ntt_in_place(params, twiddles, &mut fa)?;
    ntt_in_place(params, twiddles, &mut fb)?;
    let mut fc = pointwise(params, &fa, &fb)?;
    intt_in_place(params, twiddles, &mut fc)?;
    Ok(fc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_poly(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    #[test]
    fn ntt_matches_schoolbook_small() {
        let p = NttParams::new(8, 97).unwrap();
        let a = pseudo_poly(8, 97, 42);
        let b = pseudo_poly(8, 97, 1234);
        assert_eq!(
            polymul_ntt(&p, &a, &b).unwrap(),
            polymul_schoolbook(&p, &a, &b).unwrap()
        );
    }

    #[test]
    fn ntt_matches_schoolbook_standard_sets() {
        for (name, p) in NttParams::all_standard() {
            if p.n() > 512 {
                continue;
            }
            let a = pseudo_poly(p.n(), p.modulus(), 7);
            let b = pseudo_poly(p.n(), p.modulus(), 99);
            assert_eq!(
                polymul_ntt(&p, &a, &b).unwrap(),
                polymul_schoolbook(&p, &a, &b).unwrap(),
                "{name}"
            );
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^(N-1) · x = x^N = −1.
        let p = NttParams::new(8, 97).unwrap();
        let mut a = vec![0u64; 8];
        a[7] = 1;
        let mut b = vec![0u64; 8];
        b[1] = 1;
        let c = polymul_ntt(&p, &a, &b).unwrap();
        let mut expect = vec![0u64; 8];
        expect[0] = 96; // −1 mod 97
        assert_eq!(c, expect);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let p = NttParams::dac_256_14bit().unwrap();
        let a = pseudo_poly(256, p.modulus(), 5);
        let mut one = vec![0u64; 256];
        one[0] = 1;
        assert_eq!(polymul_ntt(&p, &a, &one).unwrap(), a);
    }

    #[test]
    fn multiplication_is_commutative() {
        let p = NttParams::new(16, 97).unwrap();
        let a = pseudo_poly(16, 97, 3);
        let b = pseudo_poly(16, 97, 11);
        assert_eq!(
            polymul_ntt(&p, &a, &b).unwrap(),
            polymul_ntt(&p, &b, &a).unwrap()
        );
    }
}
