//! Reference number-theoretic transform (NTT) library.
//!
//! This crate implements the algorithmic layer of the BP-NTT reproduction in
//! plain software:
//!
//! * [`params`] — validated NTT parameter sets, including the lattice-based
//!   schemes the paper targets (Dilithium, Falcon, Kyber) and the
//!   homomorphic-encryption levels (1024-point, 16/21/29-bit moduli).
//! * [`twiddle`] — pre-computed twiddle-factor tables in the bit-reversed
//!   order consumed by the in-place transforms (paper Algorithm 1).
//! * [`forward`] / [`inverse`] — the in-place Cooley–Tukey forward NTT and
//!   its exact Gentleman–Sande inverse over `x^N + 1` (negacyclic).
//! * [`polymul`] — negacyclic polynomial multiplication, both NTT-based and
//!   schoolbook (the correctness oracle).
//! * [`incomplete`] — Kyber's truncated seven-layer NTT with degree-one base
//!   multiplication, demonstrating the "generality" the paper claims.
//! * [`instrumented`] — an operation- and memory-trace-counting forward/
//!   inverse used to regenerate the paper's roofline analysis (Fig. 1).
//! * [`poly`] — a small polynomial convenience wrapper.
//!
//! Every transform here is the oracle against which the in-SRAM accelerator
//! (`bpntt-core`) is validated.
//!
//! # Example
//!
//! ```
//! use bpntt_ntt::{params::NttParams, polymul};
//!
//! let p = NttParams::dilithium()?;
//! let a = vec![1u64; 256];
//! let b = {
//!     let mut b = vec![0u64; 256];
//!     b[1] = 1; // b(x) = x
//!     b
//! };
//! // (Σ xʲ) · x mod (x²⁵⁶ + 1): coefficient of x⁰ becomes −1 ≡ q−1.
//! let c = polymul::polymul_ntt(&p, &a, &b)?;
//! assert_eq!(c[0], p.modulus() - 1);
//! assert_eq!(c[1], 1);
//! # Ok::<(), bpntt_ntt::NttError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod forward;
pub mod incomplete;
pub mod instrumented;
pub mod inverse;
pub mod params;
pub mod poly;
pub mod polymul;
pub mod twiddle;

pub use error::NttError;
pub use params::NttParams;
pub use poly::Polynomial;
pub use twiddle::TwiddleTable;
