//! A thin owned-polynomial wrapper over coefficient vectors.
//!
//! The transform functions in this crate operate on slices; [`Polynomial`]
//! packages a coefficient vector with the convenience operations examples
//! and tests want (construction, ring arithmetic, transforms).

use crate::error::NttError;
use crate::params::NttParams;
use crate::polymul;
use crate::twiddle::TwiddleTable;
use bpntt_modmath::zq::{add_mod, sub_mod};

/// An element of `Z_q[x]/(x^N + 1)` stored as `N` reduced coefficients.
///
/// # Example
///
/// ```
/// use bpntt_ntt::{NttParams, Polynomial};
///
/// let p = NttParams::new(8, 97)?;
/// let a = Polynomial::from_coeffs(&p, vec![1, 2, 0, 0, 0, 0, 0, 0])?;
/// let b = Polynomial::from_coeffs(&p, vec![3, 1, 0, 0, 0, 0, 0, 0])?;
/// let c = a.mul(&b, &p)?;
/// assert_eq!(&c.coeffs()[..3], &[3, 7, 2]);
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial {
    coeffs: Vec<u64>,
}

impl Polynomial {
    /// The zero polynomial of length `n`.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        Polynomial { coeffs: vec![0; n] }
    }

    /// Wraps a coefficient vector after validating it against `params`.
    ///
    /// # Errors
    ///
    /// Returns a validation error on wrong length or unreduced coefficients.
    pub fn from_coeffs(params: &NttParams, coeffs: Vec<u64>) -> Result<Self, NttError> {
        params.validate_slice(&coeffs)?;
        Ok(Polynomial { coeffs })
    }

    /// Deterministic pseudo-random polynomial from a seed (xorshift64),
    /// handy for tests and benches without threading an RNG through.
    #[must_use]
    pub fn pseudo_random(params: &NttParams, seed: u64) -> Self {
        let mut x = seed | 1;
        let coeffs = (0..params.n())
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % params.modulus()
            })
            .collect();
        Polynomial { coeffs }
    }

    /// Borrows the coefficients.
    #[inline]
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutably borrows the coefficients (callers must keep them reduced).
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// Consumes the polynomial, returning its coefficient vector.
    #[inline]
    #[must_use]
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// Number of coefficients.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when the polynomial has no coefficients.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient-wise sum.
    ///
    /// # Errors
    ///
    /// Returns a validation error on parameter mismatch.
    pub fn add(&self, other: &Polynomial, params: &NttParams) -> Result<Polynomial, NttError> {
        params.validate_slice(&self.coeffs)?;
        params.validate_slice(&other.coeffs)?;
        let q = params.modulus();
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| add_mod(a, b, q))
            .collect();
        Ok(Polynomial { coeffs })
    }

    /// Coefficient-wise difference.
    ///
    /// # Errors
    ///
    /// Returns a validation error on parameter mismatch.
    pub fn sub(&self, other: &Polynomial, params: &NttParams) -> Result<Polynomial, NttError> {
        params.validate_slice(&self.coeffs)?;
        params.validate_slice(&other.coeffs)?;
        let q = params.modulus();
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| sub_mod(a, b, q))
            .collect();
        Ok(Polynomial { coeffs })
    }

    /// Negacyclic product via the NTT.
    ///
    /// # Errors
    ///
    /// Returns a validation error on parameter mismatch.
    pub fn mul(&self, other: &Polynomial, params: &NttParams) -> Result<Polynomial, NttError> {
        Ok(Polynomial {
            coeffs: polymul::polymul_ntt(params, &self.coeffs, &other.coeffs)?,
        })
    }

    /// In-place forward NTT.
    ///
    /// # Errors
    ///
    /// Returns a validation error on parameter mismatch.
    pub fn ntt(&mut self, params: &NttParams, twiddles: &TwiddleTable) -> Result<(), NttError> {
        crate::forward::ntt_in_place(params, twiddles, &mut self.coeffs)
    }

    /// In-place inverse NTT.
    ///
    /// # Errors
    ///
    /// Returns a validation error on parameter mismatch.
    pub fn intt(&mut self, params: &NttParams, twiddles: &TwiddleTable) -> Result<(), NttError> {
        crate::inverse::intt_in_place(params, twiddles, &mut self.coeffs)
    }
}

impl AsRef<[u64]> for Polynomial {
    fn as_ref(&self) -> &[u64] {
        &self.coeffs
    }
}

impl FromIterator<u64> for Polynomial {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Polynomial {
            coeffs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_axioms_spotcheck() {
        let p = NttParams::new(16, 12289).unwrap();
        let t = TwiddleTable::new(&p);
        let a = Polynomial::pseudo_random(&p, 1);
        let b = Polynomial::pseudo_random(&p, 2);
        let c = Polynomial::pseudo_random(&p, 3);
        // (a + b) · c == a·c + b·c
        let lhs = a.add(&b, &p).unwrap().mul(&c, &p).unwrap();
        let rhs = a
            .mul(&c, &p)
            .unwrap()
            .add(&b.mul(&c, &p).unwrap(), &p)
            .unwrap();
        assert_eq!(lhs, rhs);
        // a − a == 0
        assert_eq!(a.sub(&a, &p).unwrap(), Polynomial::zero(16));
        // transform roundtrip through the wrapper
        let mut d = a.clone();
        d.ntt(&p, &t).unwrap();
        d.intt(&p, &t).unwrap();
        assert_eq!(d, a);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_reduced() {
        let p = NttParams::new(32, 193).unwrap(); // 193 ≡ 1 (mod 64)
        let a = Polynomial::pseudo_random(&p, 9);
        let b = Polynomial::pseudo_random(&p, 9);
        assert_eq!(a, b);
        assert!(a.coeffs().iter().all(|&c| c < 193));
    }

    #[test]
    fn from_coeffs_validates() {
        let p = NttParams::new(8, 97).unwrap();
        assert!(Polynomial::from_coeffs(&p, vec![0; 7]).is_err());
        assert!(Polynomial::from_coeffs(&p, vec![97; 8]).is_err());
        assert!(Polynomial::from_coeffs(&p, vec![96; 8]).is_ok());
    }
}
