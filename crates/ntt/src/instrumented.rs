//! Operation- and memory-instrumented NTT kernels.
//!
//! The paper's Fig. 1 places the NTT and inverse-NTT kernels of
//! lattice-based cryptography on a roofline and observes they are bound by
//! **L1/L2 bandwidth**, not DRAM. Reproducing that figure needs two numbers
//! per kernel: how many arithmetic operations it executes and how many bytes
//! it moves at each memory level. This module replays the exact transform
//! loops of [`crate::forward`]/[`crate::inverse`] while counting operations
//! and recording a logical memory-access trace; `bpntt-cachesim` then
//! attributes the traffic to cache levels.

use crate::params::NttParams;
use crate::twiddle::TwiddleTable;
use bpntt_modmath::zq::{add_mod, mul_mod, sub_mod};

/// One logical memory access of an instrumented kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// True for stores, false for loads.
    pub write: bool,
    /// Access size in bytes.
    pub size: u8,
}

/// Arithmetic-operation counts of an instrumented kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Modular multiplications.
    pub mul: u64,
    /// Modular additions.
    pub add: u64,
    /// Modular subtractions.
    pub sub: u64,
}

impl OpCounts {
    /// Total arithmetic operations (each modular op counted once).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.mul + self.add + self.sub
    }
}

/// Result of an instrumented kernel: op counts plus the memory trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Kernel label (e.g. `"NTT"`, `"INVNTT"`).
    pub name: &'static str,
    /// Arithmetic operation counts.
    pub ops: OpCounts,
    /// Logical memory accesses in program order.
    pub trace: Vec<Access>,
    /// Element size used for coefficients, in bytes.
    pub elem_size: u8,
}

impl KernelProfile {
    /// Total bytes touched by the trace (every access counted).
    #[must_use]
    pub fn bytes_accessed(&self) -> u64 {
        self.trace.iter().map(|a| u64::from(a.size)).sum()
    }
}

/// Layout constants for the instrumented kernels' address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Base byte address of the coefficient array.
    pub coeff_base: u64,
    /// Base byte address of the twiddle table.
    pub twiddle_base: u64,
    /// Coefficient/twiddle element size in bytes (4 for ≤32-bit moduli).
    pub elem_size: u8,
}

impl Default for AddressMap {
    fn default() -> Self {
        // Distinct 64 KiB-aligned regions so array and table never alias.
        AddressMap {
            coeff_base: 0x10000,
            twiddle_base: 0x80000,
            elem_size: 4,
        }
    }
}

/// Runs the forward NTT while recording operations and memory accesses.
///
/// The computation is identical to
/// [`forward::ntt_in_place_unchecked`](crate::forward::ntt_in_place_unchecked);
/// the returned coefficients are the real transform output, which tests use
/// to prove the instrumented twin never diverges.
#[must_use]
pub fn profile_forward(
    params: &NttParams,
    twiddles: &TwiddleTable,
    a: &mut [u64],
    map: AddressMap,
) -> KernelProfile {
    debug_assert_eq!(a.len(), params.n());
    let n = params.n();
    let q = params.modulus();
    let zetas = twiddles.zetas();
    let es = map.elem_size;
    let esz = u64::from(es);
    let mut ops = OpCounts::default();
    let mut trace = Vec::new();
    let mut k = 0usize;
    let mut len = n / 2;
    while len > 0 {
        let mut idx = 0;
        while idx < n {
            k += 1;
            trace.push(Access {
                addr: map.twiddle_base + k as u64 * esz,
                write: false,
                size: es,
            });
            let z = zetas[k];
            for j in idx..idx + len {
                trace.push(Access {
                    addr: map.coeff_base + (j + len) as u64 * esz,
                    write: false,
                    size: es,
                });
                trace.push(Access {
                    addr: map.coeff_base + j as u64 * esz,
                    write: false,
                    size: es,
                });
                let t = mul_mod(z, a[j + len], q);
                ops.mul += 1;
                a[j + len] = sub_mod(a[j], t, q);
                ops.sub += 1;
                a[j] = add_mod(a[j], t, q);
                ops.add += 1;
                trace.push(Access {
                    addr: map.coeff_base + (j + len) as u64 * esz,
                    write: true,
                    size: es,
                });
                trace.push(Access {
                    addr: map.coeff_base + j as u64 * esz,
                    write: true,
                    size: es,
                });
            }
            idx += 2 * len;
        }
        len /= 2;
    }
    KernelProfile {
        name: "NTT",
        ops,
        trace,
        elem_size: es,
    }
}

/// Runs the inverse NTT while recording operations and memory accesses
/// (instrumented twin of
/// [`inverse::intt_in_place_unchecked`](crate::inverse::intt_in_place_unchecked)).
#[must_use]
pub fn profile_inverse(
    params: &NttParams,
    twiddles: &TwiddleTable,
    a: &mut [u64],
    map: AddressMap,
) -> KernelProfile {
    debug_assert_eq!(a.len(), params.n());
    let n = params.n();
    let q = params.modulus();
    let inv_zetas = twiddles.inv_zetas();
    let es = map.elem_size;
    let esz = u64::from(es);
    let mut ops = OpCounts::default();
    let mut trace = Vec::new();
    let mut len = 1;
    while len < n {
        let k_base = n / (2 * len);
        let mut idx = 0;
        let mut b = 0;
        while idx < n {
            trace.push(Access {
                addr: map.twiddle_base + (k_base + b) as u64 * esz,
                write: false,
                size: es,
            });
            let z_inv = inv_zetas[k_base + b];
            for j in idx..idx + len {
                trace.push(Access {
                    addr: map.coeff_base + j as u64 * esz,
                    write: false,
                    size: es,
                });
                trace.push(Access {
                    addr: map.coeff_base + (j + len) as u64 * esz,
                    write: false,
                    size: es,
                });
                let u = a[j];
                let v = a[j + len];
                a[j] = add_mod(u, v, q);
                ops.add += 1;
                a[j + len] = mul_mod(z_inv, sub_mod(u, v, q), q);
                ops.sub += 1;
                ops.mul += 1;
                trace.push(Access {
                    addr: map.coeff_base + j as u64 * esz,
                    write: true,
                    size: es,
                });
                trace.push(Access {
                    addr: map.coeff_base + (j + len) as u64 * esz,
                    write: true,
                    size: es,
                });
            }
            idx += 2 * len;
            b += 1;
        }
        len *= 2;
    }
    let n_inv = params.n_inv();
    for (j, x) in a.iter_mut().enumerate() {
        trace.push(Access {
            addr: map.coeff_base + j as u64 * esz,
            write: false,
            size: es,
        });
        *x = mul_mod(*x, n_inv, q);
        ops.mul += 1;
        trace.push(Access {
            addr: map.coeff_base + j as u64 * esz,
            write: true,
            size: es,
        });
    }
    KernelProfile {
        name: "INVNTT",
        ops,
        trace,
        elem_size: es,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ntt_in_place_unchecked;
    use crate::inverse::intt_in_place_unchecked;

    #[test]
    fn instrumented_forward_matches_plain() {
        let p = NttParams::dac_256_14bit().unwrap();
        let t = TwiddleTable::new(&p);
        let orig: Vec<u64> = (0..256u64).map(|i| (i * 7919) % p.modulus()).collect();
        let mut plain = orig.clone();
        ntt_in_place_unchecked(&p, &t, &mut plain);
        let mut inst = orig.clone();
        let profile = profile_forward(&p, &t, &mut inst, AddressMap::default());
        assert_eq!(plain, inst, "instrumented twin diverged");
        // N/2·log₂N butterflies, 1 mul + 1 add + 1 sub each.
        assert_eq!(profile.ops.mul, 128 * 8);
        assert_eq!(profile.ops.add, 128 * 8);
        assert_eq!(profile.ops.sub, 128 * 8);
        assert!(!profile.trace.is_empty());
    }

    #[test]
    fn instrumented_inverse_matches_plain() {
        let p = NttParams::dac_256_14bit().unwrap();
        let t = TwiddleTable::new(&p);
        let orig: Vec<u64> = (0..256u64).map(|i| (i * 104729) % p.modulus()).collect();
        let mut plain = orig.clone();
        intt_in_place_unchecked(&p, &t, &mut plain);
        let mut inst = orig.clone();
        let profile = profile_inverse(&p, &t, &mut inst, AddressMap::default());
        assert_eq!(plain, inst);
        // Butterflies plus the final N scaling multiplications.
        assert_eq!(profile.ops.mul, 128 * 8 + 256);
    }

    #[test]
    fn trace_volume_is_as_expected() {
        let p = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&p);
        let mut a = vec![1u64; 8];
        let profile = profile_forward(&p, &t, &mut a, AddressMap::default());
        // Per stage: (#blocks) twiddle loads + 4 accesses per butterfly.
        // N=8: stages (len=4,2,1) have 1+2+4 blocks and 4 butterflies each.
        let expected = (1 + 2 + 4) + 3 * 4 * 4;
        assert_eq!(profile.trace.len(), expected);
        assert_eq!(profile.bytes_accessed(), expected as u64 * 4);
    }
}
