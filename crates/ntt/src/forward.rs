//! In-place Cooley–Tukey forward NTT (paper Algorithm 1).
//!
//! Input is in natural coefficient order; output is in bit-reversed order.
//! The loop structure matches the paper exactly:
//!
//! ```text
//! k = 0
//! for len = n/2; len > 0; len >>= 1:
//!     for idx = 0; idx < n; idx = j + len:
//!         z = ζ[++k]
//!         for j = idx .. idx+len:
//!             t        = z · a[j+len] mod q
//!             a[j+len] = a[j] − t    mod q
//!             a[j]     = a[j] + t    mod q
//! ```

use crate::error::NttError;
use crate::params::NttParams;
use crate::twiddle::TwiddleTable;
use bpntt_modmath::shoup::mul_mod_shoup;
use bpntt_modmath::zq::{add_mod, mul_mod, sub_mod};

/// Runs the forward negacyclic NTT in place.
///
/// `a` must hold `N` reduced coefficients in natural order; on return it
/// holds `NTT(a)` in bit-reversed order.
///
/// # Errors
///
/// Returns a validation error if `a` has the wrong length or unreduced
/// coefficients.
///
/// # Example
///
/// ```
/// use bpntt_ntt::{forward, inverse, NttParams, TwiddleTable};
///
/// let p = NttParams::dac_256_14bit()?;
/// let t = TwiddleTable::new(&p);
/// let mut a: Vec<u64> = (0..256u64).collect();
/// let orig = a.clone();
/// forward::ntt_in_place(&p, &t, &mut a)?;
/// inverse::intt_in_place(&p, &t, &mut a)?;
/// assert_eq!(a, orig);
/// # Ok::<(), bpntt_ntt::NttError>(())
/// ```
pub fn ntt_in_place(
    params: &NttParams,
    twiddles: &TwiddleTable,
    a: &mut [u64],
) -> Result<(), NttError> {
    params.validate_slice(a)?;
    ntt_in_place_unchecked(params, twiddles, a);
    Ok(())
}

/// Forward NTT without input validation (callers guarantee reduced, `N`-long
/// input). Used on hot paths and by the instrumented twin.
///
/// The twiddle multiply uses Harvey's Shoup formulation (precomputed
/// quotients from the [`TwiddleTable`]) whenever the modulus permits, so
/// the inner butterfly costs no division or 128-bit remainder.
pub fn ntt_in_place_unchecked(params: &NttParams, twiddles: &TwiddleTable, a: &mut [u64]) {
    let n = params.n();
    let q = params.modulus();
    let zetas = twiddles.zetas();
    if twiddles.has_shoup() {
        let zetas_shoup = twiddles.zetas_shoup();
        let mut k = 0usize;
        let mut len = n / 2;
        while len > 0 {
            let mut idx = 0;
            while idx < n {
                k += 1;
                let (z, z_shoup) = (zetas[k], zetas_shoup[k]);
                for j in idx..idx + len {
                    let t = mul_mod_shoup(z, z_shoup, a[j + len], q);
                    a[j + len] = sub_mod(a[j], t, q);
                    a[j] = add_mod(a[j], t, q);
                }
                idx += 2 * len;
            }
            len /= 2;
        }
        return;
    }
    let mut k = 0usize;
    let mut len = n / 2;
    while len > 0 {
        let mut idx = 0;
        while idx < n {
            k += 1;
            let z = zetas[k];
            for j in idx..idx + len {
                let t = mul_mod(z, a[j + len], q);
                a[j + len] = sub_mod(a[j], t, q);
                a[j] = add_mod(a[j], t, q);
            }
            idx += 2 * len;
        }
        len /= 2;
    }
}

/// Evaluates the polynomial at `ψ^(2·brv(i)+1)` directly — the O(N²)
/// definition of the negacyclic NTT, used as an oracle in tests.
#[must_use]
pub fn ntt_by_definition(params: &NttParams, a: &[u64]) -> Vec<u64> {
    let n = params.n();
    let q = params.modulus();
    let bits = params.log2_n();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Output slot i (bit-reversed order) holds the evaluation at
        // ω^brv(i) · ψ = ψ^(2·brv(i)+1).
        let r = bpntt_modmath::bits::bit_reverse(i as u64, bits);
        let root = bpntt_modmath::zq::pow_mod(params.psi(), 2 * r + 1, q);
        let mut acc = 0u64;
        let mut x = 1u64; // root^j
        for &coeff in a {
            acc = add_mod(acc, mul_mod(coeff, x, q), q);
            x = mul_mod(x, root, q);
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_small() -> NttParams {
        NttParams::new(8, 97).unwrap() // 97 ≡ 1 (mod 16)
    }

    #[test]
    fn matches_definition_small() {
        let p = params_small();
        let t = TwiddleTable::new(&p);
        let mut a: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let expect = ntt_by_definition(&p, &a);
        ntt_in_place(&p, &t, &mut a).unwrap();
        assert_eq!(a, expect);
    }

    #[test]
    fn matches_definition_standard_sets() {
        for (name, p) in NttParams::all_standard() {
            if p.n() > 512 {
                continue; // keep the O(N²) oracle cheap in unit tests
            }
            let t = TwiddleTable::new(&p);
            let mut a: Vec<u64> = (0..p.n() as u64)
                .map(|i| (i * 2654435761) % p.modulus())
                .collect();
            let expect = ntt_by_definition(&p, &a);
            ntt_in_place(&p, &t, &mut a).unwrap();
            assert_eq!(a, expect, "{name}");
        }
    }

    #[test]
    fn transform_of_delta_is_all_ones_scaled() {
        // NTT(δ₀) evaluates the constant polynomial 1 everywhere.
        let p = params_small();
        let t = TwiddleTable::new(&p);
        let mut a = vec![0u64; 8];
        a[0] = 1;
        ntt_in_place(&p, &t, &mut a).unwrap();
        assert_eq!(a, vec![1u64; 8]);
    }

    #[test]
    fn rejects_invalid_input() {
        let p = params_small();
        let t = TwiddleTable::new(&p);
        let mut short = vec![0u64; 4];
        assert!(ntt_in_place(&p, &t, &mut short).is_err());
        let mut unreduced = vec![0u64; 8];
        unreduced[3] = 97;
        assert!(ntt_in_place(&p, &t, &mut unreduced).is_err());
    }

    #[test]
    fn linearity() {
        let p = params_small();
        let t = TwiddleTable::new(&p);
        let q = p.modulus();
        let a: Vec<u64> = vec![5, 0, 93, 12, 44, 7, 1, 90];
        let b: Vec<u64> = vec![13, 22, 9, 0, 96, 3, 71, 2];
        let mut sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add_mod(x, y, q)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        ntt_in_place(&p, &t, &mut fa).unwrap();
        ntt_in_place(&p, &t, &mut fb).unwrap();
        ntt_in_place(&p, &t, &mut sum).unwrap();
        let fsum: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(&x, &y)| add_mod(x, y, q))
            .collect();
        assert_eq!(sum, fsum);
    }
}
