//! Fig. 8 regeneration benches: sweep points as benchmark cases, with the
//! sweep tables printed once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bpntt_eval::fig8;

fn print_sweeps_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if let Ok(pts) = fig8::fig8a(&[4, 8, 16, 32]) {
            println!("\n=== Fig. 8(a) bit-width sweep (order 256) ===");
            println!("{}", fig8::render(&pts));
        }
        if let Ok(pts) = fig8::fig8b(&[64, 128, 256, 512]) {
            println!("=== Fig. 8(b) order sweep (16-bit) ===");
            println!("{}", fig8::render(&pts));
        }
        if let Ok(pts) = fig8::array_scaling(&[(128, 128), (262, 256), (512, 512)]) {
            println!("=== array scaling (256-pt / 16-bit) ===");
            println!("{}", fig8::render(&pts));
        }
    });
}

fn bench_fig8a(c: &mut Criterion) {
    print_sweeps_once();
    let mut g = c.benchmark_group("fig8a_bitwidth");
    g.sample_size(10);
    for w in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| fig8::run_synthetic_forward(262, 256, w, 256, 99).unwrap());
        });
    }
    g.finish();
}

fn bench_fig8b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8b_order");
    g.sample_size(10);
    for n in [64usize, 128, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                fig8::run_real_forward(262, 256, 16, bpntt_ntt::NttParams::new(n, 12_289).unwrap())
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8a, bench_fig8b);
criterion_main!(benches);
