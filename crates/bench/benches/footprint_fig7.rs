//! Fig. 7 regeneration bench (footprint models are pure arithmetic; the
//! bench mostly exists to print the reproduced figure alongside the rest
//! of `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bpntt_baselines::footprint;

fn print_fig7_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        println!("\n=== Fig. 7 footprints (128-pt, 32-bit) ===");
        println!("{}", bpntt_eval::fig7::render(128, 32));
    });
}

fn bench_footprint(c: &mut Criterion) {
    print_fig7_once();
    c.bench_function("footprint_models", |b| {
        b.iter(|| {
            let f = footprint::fig7(black_box(128), black_box(32));
            f.iter().map(footprint::Footprint::cells).sum::<usize>()
        });
    });
}

criterion_group!(benches, bench_footprint);
criterion_main!(benches);
