//! Bit-serial vs bit-parallel ablation bench (§IV-D), printing the
//! measured comparison once.

use criterion::{criterion_group, criterion_main, Criterion};

use bpntt_baselines::bitserial::BitSerialKernel;
use bpntt_eval::ablation;

fn print_ablations_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| match ablation::render_all() {
        Ok(s) => println!("\n=== ablations (measured) ===\n{s}"),
        Err(e) => println!("ablation failed: {e}"),
    });
}

fn bench_bitserial(c: &mut Criterion) {
    print_ablations_once();
    let mut g = c.benchmark_group("bitserial_kernel");
    g.sample_size(10);
    g.bench_function("modmul_256cols_14bit", |b| {
        b.iter(|| {
            let mut k = BitSerialKernel::new(256, 14, 7681).unwrap();
            let ops: Vec<u64> = (0..256u64).map(|c| (c * 13 + 1) % 7681).collect();
            k.load_operands(&ops);
            k.modmul_const(4321).unwrap();
            k.stats().cycles
        });
    });
    g.finish();
}

fn bench_ablation_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_serial_vs_parallel");
    g.sample_size(10);
    g.bench_function("width14", |b| {
        b.iter(|| ablation::serial_vs_parallel(14, 7681).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_bitserial, bench_ablation_comparison);
criterion_main!(benches);
