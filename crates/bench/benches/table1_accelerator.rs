//! Table I regeneration bench: times the full accelerator simulation at
//! the paper's design points and prints the reproduced table once.

use criterion::{criterion_group, criterion_main, Criterion};

use bpntt_core::{BpNtt, BpNttConfig};

fn print_table_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| match bpntt_eval::table1::build() {
        Ok(rows) => {
            println!("\n=== Table I (reproduced) ===");
            println!("{}", bpntt_eval::table1::render(&rows));
        }
        Err(e) => println!("table1 generation failed: {e}"),
    });
}

fn forward_batch(cfg: BpNttConfig) -> u64 {
    let mut acc = BpNtt::new(cfg).unwrap();
    let q = acc.config().params().modulus();
    let n = acc.config().params().n();
    let lanes = acc.config().layout().lanes();
    let polys: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|s| (0..n as u64).map(|j| (s + j * 17) % q).collect())
        .collect();
    acc.load_batch(&polys).unwrap();
    acc.reset_stats();
    acc.forward().unwrap();
    acc.stats().cycles
}

fn bench_design_points(c: &mut Criterion) {
    print_table_once();
    let mut g = c.benchmark_group("table1_accelerator_sim");
    g.sample_size(10);
    g.bench_function("paper_256pt_16bit_batch16", |b| {
        b.iter(|| forward_batch(BpNttConfig::paper_256pt_16bit().unwrap()));
    });
    g.bench_function("paper_256pt_14bit_batch18", |b| {
        b.iter(|| forward_batch(BpNttConfig::paper_256pt_14bit().unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_design_points);
criterion_main!(benches);
