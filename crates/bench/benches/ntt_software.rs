//! Software (CPU) NTT benchmarks — the reference implementation that also
//! serves as Table I's CPU-row sanity check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bpntt_ntt::{forward, inverse, polymul, NttParams, Polynomial, TwiddleTable};

fn bench_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("software_ntt_forward");
    for (name, params) in NttParams::all_standard() {
        let twiddles = TwiddleTable::new(&params);
        let poly = Polynomial::pseudo_random(&params, 42);
        g.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, p| {
            b.iter(|| {
                let mut a = poly.coeffs().to_vec();
                forward::ntt_in_place_unchecked(p, &twiddles, black_box(&mut a));
                black_box(a)
            });
        });
    }
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("software_ntt_roundtrip");
    for (name, params) in [
        ("dilithium", NttParams::dilithium().unwrap()),
        ("falcon-1024", NttParams::falcon1024().unwrap()),
    ] {
        let twiddles = TwiddleTable::new(&params);
        let poly = Polynomial::pseudo_random(&params, 7);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut a = poly.coeffs().to_vec();
                forward::ntt_in_place_unchecked(&params, &twiddles, &mut a);
                inverse::intt_in_place_unchecked(&params, &twiddles, &mut a);
                black_box(a)
            });
        });
    }
    g.finish();
}

fn bench_polymul(c: &mut Criterion) {
    let mut g = c.benchmark_group("software_polymul");
    let params = NttParams::dilithium().unwrap();
    let twiddles = TwiddleTable::new(&params);
    let a = Polynomial::pseudo_random(&params, 1);
    let b = Polynomial::pseudo_random(&params, 2);
    g.bench_function("ntt_256", |bench| {
        bench.iter(|| {
            polymul::polymul_ntt_with(&params, &twiddles, a.coeffs(), b.coeffs()).unwrap()
        });
    });
    g.bench_function("schoolbook_256", |bench| {
        bench.iter(|| polymul::polymul_schoolbook(&params, a.coeffs(), b.coeffs()).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_forward, bench_roundtrip, bench_polymul);
criterion_main!(benches);
