//! Word-model modular-multiplication benchmarks: Algorithm 2 versus the
//! classical Montgomery formulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bpntt_modmath::bitparallel::bp_modmul;
use bpntt_modmath::montgomery::MontCtx;

fn bench_modmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("modmul_word_models");
    for (label, q, n) in [
        ("kyber-7681/14b", 7681u64, 14u32),
        ("falcon-12289/16b", 12_289, 16),
        ("dilithium/24b", 8_380_417, 24),
    ] {
        let ctx = MontCtx::new(q, n).unwrap();
        let (a, b) = (q / 3, q / 5);
        g.bench_with_input(BenchmarkId::new("redc", label), &(a, b), |bch, &(a, b)| {
            bch.iter(|| ctx.mont_mul(black_box(a), black_box(b)));
        });
        g.bench_with_input(
            BenchmarkId::new("interleaved", label),
            &(a, b),
            |bch, &(a, b)| {
                bch.iter(|| ctx.mont_mul_interleaved(black_box(a), black_box(b)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("algorithm2", label),
            &(a, b),
            |bch, &(a, b)| {
                bch.iter(|| bp_modmul(black_box(a), black_box(b), q, n));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_modmul);
criterion_main!(benches);
