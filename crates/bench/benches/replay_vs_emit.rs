//! The compile-once/replay-many win: per-call emission vs cached-program
//! replay vs sharded replay, on a 256-point Dilithium forward NTT (the
//! acceptance config: 24-bit tiles, 10 lanes on a 262×256 array).

use criterion::{criterion_group, criterion_main, Criterion};

use bpntt_core::{BpNtt, BpNttConfig, ShardedBpNtt};
use bpntt_ntt::NttParams;

fn dilithium_config() -> BpNttConfig {
    BpNttConfig::new(262, 256, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap()
}

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

fn bench_replay_vs_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("dilithium256_forward");
    g.sample_size(10);
    let cfg = dilithium_config();
    let lanes = cfg.layout().lanes();
    let batch = pseudo_batch(&cfg, lanes, 1);

    let mut emit = BpNtt::new(cfg.clone()).unwrap();
    emit.load_batch(&batch).unwrap();
    g.bench_function("emit_per_call", |b| {
        b.iter(|| emit.forward_uncached().unwrap());
    });

    let mut replay = BpNtt::new(cfg.clone()).unwrap();
    replay.load_batch(&batch).unwrap();
    replay.forward().unwrap(); // compile + warm the cache
    g.bench_function("replay_cached", |b| {
        b.iter(|| replay.forward().unwrap());
    });
    g.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("dilithium256_sharded_polys_per_call");
    g.sample_size(10);
    let cfg = dilithium_config();
    let lanes = cfg.layout().lanes();
    for shards in [1usize, 2, 4, 8] {
        let mut sharded = ShardedBpNtt::new(&cfg, shards).unwrap();
        let batch = pseudo_batch(&cfg, shards * lanes, 7);
        // Warm the shared program cache outside the timing loop.
        sharded.forward_batch(&batch).unwrap();
        g.bench_function(format!("shards={shards} ({} polys)", batch.len()), |b| {
            b.iter(|| sharded.forward_batch(&batch).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay_vs_emit, bench_sharded);
criterion_main!(benches);
