//! The compile-once/replay-many win: per-call emission vs cached-program
//! replay vs sharded replay, on 256-point Dilithium forward NTTs
//! (24-bit tiles, modulus 8 380 417).
//!
//! The array-width sweep shows the structural behaviour: emission pays a
//! fixed per-instruction cost (code generation, cost-model evaluation,
//! validation) on top of the shared word-level row arithmetic, so the
//! replay advantage is largest on narrow arrays and tapers as the row
//! width (and with it the shared arithmetic) grows: ≳4× at 2 lanes,
//! ≳3× through 6 lanes, ~2.5× at the paper's full 256-column geometry.

use criterion::{criterion_group, criterion_main, Criterion};

use bpntt_core::{BpNtt, BpNttConfig, ExecMode, ShardedBpNtt};
use bpntt_ntt::NttParams;

fn dilithium_config(cols: usize) -> BpNttConfig {
    BpNttConfig::new(262, cols, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap()
}

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

fn bench_replay_vs_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("dilithium256_forward");
    g.sample_size(10);
    for cols in [48usize, 96, 144, 256] {
        let cfg = dilithium_config(cols);
        let lanes = cfg.layout().lanes();
        let batch = pseudo_batch(&cfg, lanes, 1);

        let mut emit = BpNtt::new(cfg.clone()).unwrap();
        emit.load_batch(&batch).unwrap();
        g.bench_function(format!("emit_per_call/{cols}cols_{lanes}lanes"), |b| {
            b.iter(|| emit.forward_mode(ExecMode::FusedEmit).unwrap());
        });

        let mut replay = BpNtt::new(cfg.clone()).unwrap();
        replay.load_batch(&batch).unwrap();
        replay.forward().unwrap(); // compile + warm the cache
        g.bench_function(format!("replay_cached/{cols}cols_{lanes}lanes"), |b| {
            b.iter(|| replay.forward().unwrap());
        });
    }
    g.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("dilithium256_sharded_forward_batch");
    g.sample_size(10);
    let cfg = dilithium_config(256);
    let lanes = cfg.layout().lanes();
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedBpNtt::new(&cfg, shards).unwrap();
        let batch = pseudo_batch(&cfg, shards * lanes, 7);
        // Warm the shared program cache outside the timing loop.
        sharded.forward_batch(&batch).unwrap();
        g.bench_function(format!("shards={shards} ({} polys)", batch.len()), |b| {
            b.iter(|| sharded.forward_batch(&batch).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_replay_vs_emit, bench_sharded);
criterion_main!(benches);
