//! Fig. 1 regeneration bench: instrumented kernels through the cache
//! simulator, printing the roofline placement once.

use criterion::{criterion_group, criterion_main, Criterion};

use bpntt_eval::roofline::{ntt_kernel_points, render, Machine};
use bpntt_ntt::NttParams;

fn print_roofline_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let machine = Machine::typical_x86();
        let params = NttParams::dilithium().unwrap();
        let pts = ntt_kernel_points(&params, &machine);
        println!("\n=== Fig. 1 roofline placement (Dilithium) ===");
        println!("{}", render(&pts, &machine));
    });
}

fn bench_roofline(c: &mut Criterion) {
    print_roofline_once();
    let machine = Machine::typical_x86();
    let mut g = c.benchmark_group("roofline_pipeline");
    for (name, params) in [
        ("dilithium_256", NttParams::dilithium().unwrap()),
        ("he_1024_16b", NttParams::he_1024_16bit().unwrap()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| ntt_kernel_points(&params, &machine));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_roofline);
criterion_main!(benches);
