//! Simulator micro-benchmarks: how fast the SRAM model executes
//! instructions (host speed, not modeled hardware speed).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bpntt_sram::{BitOp, BitRow, Controller, Instruction, PredMode, RowAddr, ShiftDir, SramArray};

fn controller() -> Controller {
    let mut ctl = Controller::new(SramArray::new(256, 256).unwrap(), 16).unwrap();
    for r in 0..8 {
        let mut row = BitRow::zero(256);
        for t in 0..16 {
            row.set_tile_word(t, 16, (r as u64 * 3 + t as u64 * 7) & 0xFFFF);
        }
        ctl.load_data_row(r, row);
    }
    ctl
}

fn bench_instructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("sram_sim_instructions");
    let dual = Instruction::Binary {
        dst: RowAddr(4),
        op: BitOp::And,
        src0: RowAddr(0),
        src1: RowAddr(1),
        dst2: Some((RowAddr(5), BitOp::Xor)),
        shift: None,
        pred: PredMode::Always,
    };
    g.bench_function("binary_dual_writeback", |b| {
        let mut ctl = controller();
        b.iter(|| ctl.execute(black_box(&dual)).unwrap());
    });
    let shift = Instruction::Shift {
        dst: RowAddr(6),
        src: RowAddr(2),
        dir: ShiftDir::Left,
        masked: true,
        pred: PredMode::Always,
    };
    g.bench_function("masked_shift", |b| {
        let mut ctl = controller();
        b.iter(|| ctl.execute(black_box(&shift)).unwrap());
    });
    let check = Instruction::Check {
        src: RowAddr(0),
        bit: 0,
    };
    let pred_copy = Instruction::Unary {
        dst: RowAddr(7),
        src: RowAddr(3),
        kind: bpntt_sram::UnaryKind::Copy,
        pred: PredMode::IfSet,
    };
    g.bench_function("check_plus_predicated_copy", |b| {
        let mut ctl = controller();
        b.iter(|| {
            ctl.execute(&check).unwrap();
            ctl.execute(black_box(&pred_copy)).unwrap();
        });
    });
    g.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let i = Instruction::Binary {
        dst: RowAddr(100),
        op: BitOp::Xor,
        src0: RowAddr(200),
        src1: RowAddr(201),
        dst2: Some((RowAddr(101), BitOp::And)),
        shift: Some((ShiftDir::Right, true)),
        pred: PredMode::IfSet,
    };
    c.bench_function("isa_encode_decode_roundtrip", |b| {
        b.iter(|| Instruction::decode(black_box(i.encode())).unwrap());
    });
}

criterion_group!(benches, bench_instructions, bench_encode_decode);
criterion_main!(benches);
