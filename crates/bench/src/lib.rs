//! Criterion benchmark harness (library stub; benches live in `benches/`).

#![forbid(unsafe_code)]
