//! Emits `BENCH_service.json`: the network front-end under a zipf-hot
//! multi-tenant mix with connection chaos. This bin is both the service
//! trajectory benchmark and the chaos harness the CI smoke leg runs —
//! every assertion below is a release gate:
//!
//! * every **admitted** request completes reference-exact (the fault
//!   plan from the recovery ladder stays armed, so completion means
//!   *verified*, not merely returned);
//! * every **shed** request fails typed (`Overloaded`/`RateLimited`)
//!   with a `retry_after_ms ≥ 1` back-off hint on the wire;
//! * the per-tenant completion-ratio spread stays within a fairness
//!   bound under a 10:1 hot-tenant offered-load mix;
//! * the server survives disconnecting, malformed, and slow-loris
//!   clients and still answers a health probe afterwards.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p bpntt-bench --bin loadgen [-- OPTIONS]
//! ```
//!
//! Options (defaults in parentheses):
//!
//! * `--shards N` — arrays per tenant engine (2).
//! * `--tenants N` — tenant count; tenant 0 is the hot one (4).
//! * `--hot-conns N` — connections driving the hot tenant; each cold
//!   tenant gets one, so this is the offered-load skew (10).
//! * `--requests N` — requests per connection (40).
//! * `--queue N` — bounded queue capacity (10).
//! * `--shed X` — load-shed threshold as a fraction of the queue (0.8);
//!   below 1.0 leaves tenant-fair admission headroom.
//! * `--coalesce-us N` — dispatcher coalescing window, µs (500).
//! * `--chaos-rate R` — per-instruction transient bit-flip rate in every
//!   shard's SRAM (0.01); pair of the recovery ladder.
//! * `--verify POLICY` — `off|range|spot|full` (spot).
//! * `--rate-limit RPS` — arm per-tenant token buckets (off).
//! * `--disconnects N` — clients that submit then vanish mid-request (6).
//! * `--malformed N` — hostile frames: bad magic, truncated, oversized
//!   prefix, garbage payload (8).
//! * `--slowloris N` — connections that stall inside a frame (2).
//! * `--fairness-bound X` — max/min completion-ratio spread gate (1.5).
//! * `--json-out PATH` — output path (`BENCH_service.json`).
//! * `--burst` — the self-healing drill (off): swaps the transient
//!   chaos plan for a windowed `dead_row` **burst** that corrupts each
//!   shard's first chunk and then burns out, arms the service's
//!   background scrubber (fast probe cadence), forces `--verify full`,
//!   and gives every fair client an automatic retry policy. Release
//!   gates on top of the usual ones: at least one shard must be
//!   probed, canaried, and **reintegrated with no manual
//!   `lift_quarantine` call**, and zero corruptions may escape to any
//!   client.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bpntt_core::{
    BpNttConfig, FaultPlan, HealthOptions, NttService, RateLimit, ServiceOptions, ShardedBpNtt,
    VerifyPolicy,
};
use bpntt_core::{ExecMode, PipelineSpec};
use bpntt_net::{
    encode_request, write_frame, ClientError, FrameLimits, NetClient, NetOptions, NetServer,
    Request, RetryPolicy, SubmitRequest, WireErrorCode,
};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{NttParams, Polynomial, TwiddleTable};

struct Options {
    shards: usize,
    tenants: usize,
    hot_conns: usize,
    requests: u64,
    queue: usize,
    shed: f64,
    coalesce_us: u64,
    chaos_rate: f64,
    verify: VerifyPolicy,
    rate_limit: Option<f64>,
    disconnects: usize,
    malformed: usize,
    slowloris: usize,
    fairness_bound: f64,
    json_out: String,
    burst: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        shards: 2,
        tenants: 4,
        hot_conns: 10,
        requests: 40,
        queue: 10,
        shed: 0.8,
        coalesce_us: 500,
        chaos_rate: 0.01,
        verify: VerifyPolicy::SpotCheck { points: 2 },
        rate_limit: None,
        disconnects: 6,
        malformed: 8,
        slowloris: 2,
        fairness_bound: 1.5,
        json_out: "BENCH_service.json".to_string(),
        burst: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--shards" => opts.shards = value("--shards").parse().expect("--shards integer"),
            "--tenants" => {
                opts.tenants = value("--tenants").parse().expect("--tenants integer");
                assert!(opts.tenants >= 1, "--tenants must be at least 1");
            }
            "--hot-conns" => {
                opts.hot_conns = value("--hot-conns").parse().expect("--hot-conns integer");
            }
            "--requests" => {
                opts.requests = value("--requests").parse().expect("--requests integer");
            }
            "--queue" => opts.queue = value("--queue").parse().expect("--queue integer"),
            "--shed" => {
                opts.shed = value("--shed").parse().expect("--shed float");
                assert!((0.0..=1.0).contains(&opts.shed), "--shed must be in [0, 1]");
            }
            "--coalesce-us" => {
                opts.coalesce_us = value("--coalesce-us")
                    .parse()
                    .expect("--coalesce-us integer");
            }
            "--chaos-rate" => {
                opts.chaos_rate = value("--chaos-rate").parse().expect("--chaos-rate float");
                assert!(
                    (0.0..=1.0).contains(&opts.chaos_rate),
                    "--chaos-rate must be in [0, 1]"
                );
            }
            "--verify" => {
                opts.verify = match value("--verify").as_str() {
                    "off" => VerifyPolicy::Off,
                    "range" => VerifyPolicy::Range,
                    "spot" => VerifyPolicy::SpotCheck { points: 2 },
                    "full" => VerifyPolicy::Full,
                    other => panic!("--verify must be off|range|spot|full, got {other}"),
                };
            }
            "--rate-limit" => {
                opts.rate_limit = Some(value("--rate-limit").parse().expect("--rate-limit float"));
            }
            "--disconnects" => {
                opts.disconnects = value("--disconnects")
                    .parse()
                    .expect("--disconnects integer");
            }
            "--malformed" => {
                opts.malformed = value("--malformed").parse().expect("--malformed integer");
            }
            "--slowloris" => {
                opts.slowloris = value("--slowloris").parse().expect("--slowloris integer");
            }
            "--fairness-bound" => {
                opts.fairness_bound = value("--fairness-bound")
                    .parse()
                    .expect("--fairness-bound float");
            }
            "--json-out" => opts.json_out = value("--json-out"),
            "--burst" => opts.burst = true,
            other => panic!("unknown option {other} (see the module docs for the full list)"),
        }
    }
    opts
}

#[derive(Default)]
struct TenantStats {
    offered: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
}

/// What the client-side resilience layer did, summed over every fair
/// connection (reported in the JSON `client` block).
#[derive(Default)]
struct ClientAgg {
    retries: AtomicU64,
    reconnects: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
}

impl ClientAgg {
    fn absorb(&self, s: bpntt_net::ClientStats) {
        self.retries.fetch_add(s.retries, Ordering::Relaxed);
        self.reconnects.fetch_add(s.reconnects, Ordering::Relaxed);
        self.hedges_launched
            .fetch_add(s.hedges_launched, Ordering::Relaxed);
        self.hedges_won.fetch_add(s.hedges_won, Ordering::Relaxed);
    }
}

fn pseudo(params: &NttParams, seed: u64) -> Vec<u64> {
    Polynomial::pseudo_random(params, seed).into_coeffs()
}

/// One well-behaved connection: `requests` submissions for one tenant,
/// each verified against the software reference, sheds counted typed.
#[allow(clippy::too_many_arguments)]
fn fair_client(
    addr: std::net::SocketAddr,
    tenant_raw: Option<u32>,
    tenant_idx: usize,
    conn_seed: u64,
    requests: u64,
    params: &NttParams,
    twiddles: &TwiddleTable,
    stats: &TenantStats,
    policy: RetryPolicy,
    agg: &ClientAgg,
) {
    let mut client = NetClient::connect_with_policy(addr, policy).expect("connect fair client");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("client read timeout");
    for r in 0..requests {
        let seed = conn_seed * 1_000_003 + r * 31 + 1;
        let polymul = r % 3 == 2;
        let (spec, inputs) = if polymul {
            (
                PipelineSpec::polymul(),
                vec![pseudo(params, seed), pseudo(params, seed + 13)],
            )
        } else {
            (PipelineSpec::forward_ntt(), vec![pseudo(params, seed)])
        };
        stats.offered.fetch_add(1, Ordering::Relaxed);
        let sent = inputs.clone();
        // With `max_attempts: 1` (the default run) this is the plain
        // submit path; the burst drill arms real retries, so sheds and
        // dropped sockets are healed inside the client and only
        // post-retry failures surface here.
        match client.submit_with_retry(&SubmitRequest {
            tenant: tenant_raw,
            mode: ExecMode::Replay,
            deadline_ms: 10_000,
            spec,
            inputs,
        }) {
            Ok(got) => {
                let expect = if polymul {
                    polymul_schoolbook(params, &sent[0], &sent[1]).unwrap()
                } else {
                    let mut e = sent[0].clone();
                    ntt_in_place(params, twiddles, &mut e).unwrap();
                    e
                };
                assert_eq!(
                    got, expect,
                    "admitted request diverged from the reference (tenant {tenant_idx}, req {r})"
                );
                stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ClientError::Remote {
                code: code @ (WireErrorCode::Overloaded | WireErrorCode::RateLimited),
                retry_after_ms,
                ..
            }) => {
                assert!(
                    retry_after_ms >= 1,
                    "{code:?} shed must carry a nonzero retry_after_ms"
                );
                stats.shed.fetch_add(1, Ordering::Relaxed);
                // Honor the hint (capped so a pessimistic estimate
                // cannot stall the run): a shed client backing off is
                // the contract the retry_after_ms field exists for.
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms).min(20)));
            }
            Err(e) => {
                eprintln!("tenant {tenant_idx} req {r} failed untyped: {e}");
                stats.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    agg.absorb(client.stats());
}

/// Chaos: submit a valid request, then vanish without reading the
/// response — exercises the mid-request-disconnect → cancel path.
fn disconnector(addr: std::net::SocketAddr, params: &NttParams, seed: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let req = Request::Submit(SubmitRequest {
        tenant: None,
        mode: ExecMode::Replay,
        deadline_ms: 10_000,
        spec: PipelineSpec::forward_ntt(),
        inputs: vec![pseudo(params, 0xD15C + seed)],
    });
    let _ = write_frame(&mut stream, &encode_request(&req));
    // Drop without reading: the server's peek sees EOF and cancels.
}

/// Chaos: four flavours of hostile bytes. None may crash the server.
fn malformed(addr: std::net::SocketAddr, flavour: usize) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    match flavour % 4 {
        0 => {
            // Bad magic: well-framed, hostile payload. Expect a typed
            // error response on a surviving connection.
            let _ = write_frame(&mut stream, b"XXXXGARBAGE");
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
        }
        1 => {
            // Truncated: promise 100 bytes, deliver 10, hang up.
            let _ = stream.write_all(&100u32.to_le_bytes());
            let _ = stream.write_all(&[0u8; 10]);
        }
        2 => {
            // Oversized length prefix: the server must answer typed (or
            // just drop) without allocating 4 GiB.
            let _ = stream.write_all(&u32::MAX.to_le_bytes());
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
        }
        _ => {
            // Garbage payload under a correct envelope length.
            let _ = write_frame(&mut stream, &[0xAA; 37]);
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
        }
    }
}

/// Chaos: stall inside a length prefix longer than the server's read
/// timeout; the server must drop us, not dedicate a thread forever.
fn slowloris(addr: std::net::SocketAddr, hold: Duration) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.write_all(&[0x04, 0x00]); // half a length prefix
    std::thread::sleep(hold);
    // If the server dropped us (as it must), this read sees EOF/reset.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 8];
    let _ = stream.read(&mut buf);
}

fn main() {
    let mut opts = parse_args();
    // Same 64-point Kyber-class workload as bench_service: 134 rows,
    // 14-bit tiles in 256 columns → 18 lanes per shard.
    let params = NttParams::new(64, 7681).unwrap();
    let cfg = BpNttConfig::new(134, 256, 14, params.clone()).unwrap();
    let twiddles = TwiddleTable::new(&params);
    let n = params.n();
    let q = params.modulus();

    let chaos_plan = if opts.burst {
        // A dead row corrupts whole coefficients, so only a full check
        // is a reliable detector — anything weaker can let the burst
        // escape to a client and fail the run on the wrong gate.
        if opts.verify != VerifyPolicy::Full {
            eprintln!("--burst forces --verify full (was {:?})", opts.verify);
            opts.verify = VerifyPolicy::Full;
        }
        // Calibrate the burst window to one chunk's instruction count,
        // so each shard's dead row burns out after its first chunk and
        // the scrubber's probes (which advance the same per-shard
        // instruction clock) find a healable array.
        let mut probe_engine = ShardedBpNtt::new(&cfg, 1).expect("burst calibration engine");
        let warmup: Vec<Vec<u64>> = (0..4).map(|s| pseudo(&params, s + 1)).collect();
        probe_engine
            .forward_batch(&warmup)
            .expect("burst calibration wave");
        let chunk_instrs = probe_engine.stats().counts.total();
        Some(
            FaultPlan::seeded(0xB0057)
                .dead_row(2)
                .active_between(0, chunk_instrs),
        )
    } else {
        (opts.chaos_rate > 0.0)
            .then(|| FaultPlan::seeded(0xBEEF_CAFE).transient_rate(opts.chaos_rate))
    };
    let opts = opts;
    assert!(
        chaos_plan.is_none() || opts.verify.is_active(),
        "--chaos-rate needs an active --verify policy, or corruption escapes"
    );
    // The self-healing drill arms the background scrubber: quarantined
    // shards are probed on a fast cadence and walk back to duty through
    // canary mode with no manual lift_quarantine call anywhere below.
    let health = opts.burst.then(|| HealthOptions {
        probe_interval: Duration::from_millis(5),
        probes_to_canary: 2,
        canary_waves_to_healthy: 2,
        max_probe_backoff: Duration::from_millis(200),
        decay_half_life: Duration::from_millis(100),
        probe_score_threshold: 1e9,
        patrol: true,
        patrol_interval: Duration::from_millis(100),
    });
    let service = std::sync::Arc::new(
        NttService::start(
            &cfg,
            ServiceOptions {
                shards: opts.shards,
                max_queue: opts.queue,
                shed_threshold: opts.shed,
                coalesce_window: Duration::from_micros(opts.coalesce_us),
                verify: opts.verify,
                retry_budget: if opts.verify.is_active() { 2 } else { 0 },
                fault_plan: chaos_plan,
                rate_limit: opts.rate_limit.map(|rps| RateLimit {
                    requests_per_sec: rps,
                    burst: rps,
                }),
                health,
                ..ServiceOptions::default()
            },
        )
        .unwrap(),
    );
    // Tenant 0 is the service default; the cold tenants get their own
    // engines (and fair-queue lanes) via add_tenant.
    let mut tenant_raws: Vec<Option<u32>> = vec![None];
    for _ in 1..opts.tenants {
        tenant_raws.push(Some(service.add_tenant(&cfg).unwrap().raw()));
    }

    let read_timeout = Duration::from_millis(500);
    let server = NetServer::bind(
        "127.0.0.1:0",
        std::sync::Arc::clone(&service),
        NetOptions {
            read_timeout,
            write_timeout: Duration::from_secs(2),
            limits: FrameLimits::default(),
        },
    )
    .expect("bind loadgen server");
    let addr = server.local_addr();

    let stats: Vec<TenantStats> = (0..opts.tenants).map(|_| TenantStats::default()).collect();
    let agg = ClientAgg::default();
    // The burst drill gives every fair connection real resilience;
    // the plain benchmark keeps the one-shot submit path so the shed
    // accounting gates below stay meaningful.
    let policy = if opts.burst {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            ..RetryPolicy::default()
        }
    } else {
        RetryPolicy {
            max_attempts: 1,
            reconnect: false,
            ..RetryPolicy::default()
        }
    };
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // 10:1 zipf-ish offered load: `hot_conns` connections hammer
        // tenant 0, one connection per cold tenant.
        let mut conn_seed = 0u64;
        for _ in 0..opts.hot_conns {
            conn_seed += 1;
            let (params, twiddles, stats, agg) = (&params, &twiddles, &stats[0], &agg);
            let seed = conn_seed;
            scope.spawn(move || {
                fair_client(
                    addr,
                    None,
                    0,
                    seed,
                    opts.requests,
                    params,
                    twiddles,
                    stats,
                    policy,
                    agg,
                );
            });
        }
        for (t, raw) in tenant_raws.iter().enumerate().skip(1) {
            conn_seed += 1;
            let (params, twiddles, stats, agg) = (&params, &twiddles, &stats[t], &agg);
            let (seed, raw) = (conn_seed, *raw);
            scope.spawn(move || {
                fair_client(
                    addr,
                    raw,
                    t,
                    seed,
                    opts.requests,
                    params,
                    twiddles,
                    stats,
                    policy,
                    agg,
                );
            });
        }
        // Chaos runs concurrently with the fair traffic.
        for d in 0..opts.disconnects {
            let params = &params;
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(7 * d as u64));
                disconnector(addr, params, d as u64);
            });
        }
        for m in 0..opts.malformed {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(5 * m as u64));
                malformed(addr, m);
            });
        }
        for _ in 0..opts.slowloris {
            scope.spawn(move || slowloris(addr, read_timeout * 3));
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    // The server must have survived the chaos: a fresh probe connection
    // still answers, and fetches both metrics exports.
    let mut probe = NetClient::connect(addr).expect("post-chaos probe connect");
    probe.ping().expect("post-chaos ping");
    let prom = probe.metrics_prometheus().expect("post-chaos prometheus");
    assert!(prom.contains("bpntt_tenant_completed_total"));
    if opts.burst {
        assert!(
            prom.contains("bpntt_shard_health_state"),
            "burst drill: shard health must be visible on the Prometheus wire"
        );
        // One hedged submission against the live server: with an
        // immediate hedge threshold both arms race for real, and the
        // loser's connection drop is absorbed as a normal cancel.
        let mut hedger = NetClient::connect_with_policy(
            addr,
            RetryPolicy {
                hedge_after: Some(Duration::ZERO),
                ..policy
            },
        )
        .expect("hedge drill connect");
        let sent = pseudo(&params, 0x4ED6E);
        let got = hedger
            .submit_hedged(&SubmitRequest {
                tenant: None,
                mode: ExecMode::Replay,
                deadline_ms: 10_000,
                spec: PipelineSpec::forward_ntt(),
                inputs: vec![sent.clone()],
            })
            .expect("hedged submit");
        let mut expect = sent;
        ntt_in_place(&params, &twiddles, &mut expect).unwrap();
        assert_eq!(got, expect, "hedged submit diverged from the reference");
        assert_eq!(hedger.stats().hedges_launched, 1);
        agg.absorb(hedger.stats());
    }
    server.shutdown();
    let metrics = std::sync::Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("server threads still hold the service"))
        .shutdown();

    // ---- gates -------------------------------------------------------
    let offered: u64 = stats
        .iter()
        .map(|s| s.offered.load(Ordering::Relaxed))
        .sum();
    let completed: u64 = stats
        .iter()
        .map(|s| s.completed.load(Ordering::Relaxed))
        .sum();
    let shed: u64 = stats.iter().map(|s| s.shed.load(Ordering::Relaxed)).sum();
    let failed: u64 = stats.iter().map(|s| s.failed.load(Ordering::Relaxed)).sum();
    assert_eq!(
        failed, 0,
        "every non-shed request must complete typed and verified"
    );
    assert_eq!(offered, completed + shed, "outcome accounting must close");
    let ratios: Vec<f64> = stats
        .iter()
        .map(|s| {
            let o = s.offered.load(Ordering::Relaxed).max(1);
            s.completed.load(Ordering::Relaxed) as f64 / o as f64
        })
        .collect();
    let (min_ratio, max_ratio) = ratios.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &r| {
        (lo.min(r), hi.max(r))
    });
    let spread = if min_ratio > 0.0 {
        max_ratio / min_ratio
    } else {
        f64::INFINITY
    };
    assert!(
        spread <= opts.fairness_bound,
        "per-tenant completion-ratio spread {spread:.3} exceeds the {:.2} fairness bound \
         (ratios {ratios:?})",
        opts.fairness_bound
    );
    if opts.burst {
        // The self-healing gates: the burst-benched shards must have
        // been probed and reintegrated by the scrubber alone, mid-run,
        // with every admitted request still reference-exact (failed==0
        // above covers the zero-escaped-corruptions half).
        assert!(
            metrics.probes_run >= 1 && metrics.probes_passed >= 1,
            "burst drill: the scrubber never probed a shard \
             (probes_run {}, probes_passed {})",
            metrics.probes_run,
            metrics.probes_passed
        );
        assert!(
            metrics.reintegrations >= 1,
            "burst drill: no shard was reintegrated by the scrubber"
        );
        assert_eq!(
            completed,
            offered - shed,
            "burst drill: every admitted request must complete"
        );
    }

    // ---- JSON --------------------------------------------------------
    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::from("{\n  \"benchmark\": \"service_loadgen\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"n\": {n}, \"q\": {q}, \"tenants\": {}, \"hot_conns\": {}, \"requests_per_conn\": {}, \"mix\": \"2:1 forward:polymul, 10:1 hot-tenant zipf\"}},",
        opts.tenants, opts.hot_conns, opts.requests
    );
    let _ = writeln!(
        json,
        "  \"options\": {{\"shards\": {}, \"max_queue\": {}, \"shed_threshold\": {}, \"coalesce_us\": {}, \"chaos_rate\": {:e}, \"verify\": \"{:?}\", \"rate_limit_rps\": {}, \"disconnects\": {}, \"malformed\": {}, \"slowloris\": {}, \"burst\": {}}},",
        opts.shards,
        opts.queue,
        opts.shed,
        opts.coalesce_us,
        opts.chaos_rate,
        opts.verify,
        opts.rate_limit.map_or("null".to_string(), |r| format!("{r}")),
        opts.disconnects,
        opts.malformed,
        opts.slowloris,
        opts.burst
    );
    let _ = writeln!(
        json,
        "  \"wall_s\": {wall:.3},\n  \"offered\": {offered},\n  \"completed\": {completed},\n  \"shed\": {shed},\n  \"failed\": {failed},\n  \"fairness_spread\": {spread:.4},"
    );
    json.push_str("  \"per_tenant\": [");
    for (t, s) in stats.iter().enumerate() {
        if t > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"tenant\": {t}, \"offered\": {}, \"completed\": {}, \"shed\": {}, \"completion_ratio\": {:.4}}}",
            s.offered.load(Ordering::Relaxed),
            s.completed.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
            ratios[t]
        );
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "  \"client\": {{\"retries\": {}, \"reconnects\": {}, \"hedges_launched\": {}, \"hedges_won\": {}}},",
        agg.retries.load(Ordering::Relaxed),
        agg.reconnects.load(Ordering::Relaxed),
        agg.hedges_launched.load(Ordering::Relaxed),
        agg.hedges_won.load(Ordering::Relaxed)
    );
    let _ = writeln!(json, "  \"service\": {},", metrics.to_json());
    let _ = write!(
        json,
        "  \"note\": \"wall-clock on the build machine; every admitted request verified against the software NTT reference under armed fault injection and connection chaos\",\n  \"available_parallelism\": {parallelism},\n  \"simd_active\": {}\n}}\n",
        bpntt_sram::simd_active()
    );
    std::fs::write(&opts.json_out, &json).expect("write benchmark JSON");

    println!(
        "{offered} offered in {wall:.2} s → {completed} completed (all verified), {shed} shed typed, fairness spread {spread:.3}"
    );
    println!(
        "service: {} waves, {} submitted, {} rejected ({} rate-limited), {} cancelled, {} tenants",
        metrics.waves,
        metrics.submitted,
        metrics.rejected,
        metrics.rate_limited,
        metrics.cancelled,
        metrics.tenants
    );
    if opts.burst {
        println!(
            "health: {} probes ({} passed), {} reintegrations, {} canary demotions, shard states {:?}; client retries {}, reconnects {}, hedges {}/{}",
            metrics.probes_run,
            metrics.probes_passed,
            metrics.reintegrations,
            metrics.canary_demotions,
            metrics.shard_health,
            agg.retries.load(Ordering::Relaxed),
            agg.reconnects.load(Ordering::Relaxed),
            agg.hedges_won.load(Ordering::Relaxed),
            agg.hedges_launched.load(Ordering::Relaxed)
        );
    }
    println!("wrote {}", opts.json_out);
}
