//! Emits `bench_service_mixed.json`: throughput and queue metrics of the
//! request-queue service under a concurrent mixed workload. (The tracked
//! `BENCH_service.json` trajectory belongs to the `loadgen` bin, which
//! drives the wire front-end.) Run from the workspace root:
//!
//! ```text
//! cargo run --release -p bpntt-bench --bin bench_service [-- OPTIONS]
//! ```
//!
//! Options:
//!
//! * `--shards N` — arrays per tenant engine (default 2).
//! * `--clients N` — concurrent client threads (default 4).
//! * `--requests N` — requests per client (default 48; 2:1
//!   forward:polymul mix).
//! * `--queue N` — bounded queue capacity (default 512).
//! * `--coalesce-us N` — dispatcher coalescing window in µs (default
//!   500).
//! * `--json-out PATH` — where to write the JSON (default
//!   `bench_service_mixed.json`).
//! * `--chaos-rate R` — per-instruction transient bit-flip probability
//!   injected into every shard's SRAM (default 0 = no faults). Use with
//!   `--verify` so corruption is detected and recovered, not returned.
//! * `--verify POLICY` — output verification: `off`, `range`, `spot`
//!   (2-point spot check), or `full` (default `off`; anything active
//!   also arms retries and the software fallback). The recovery
//!   counters (`faults_detected`, `retries`, `quarantined_shards`,
//!   `fallback_polys`, `verify_ms`) land in the JSON's `service` object.
//!
//! The workload is a 64-point NTT modulo 7681 (Kyber-class prime) in
//! 14-bit words — small enough that queueing, coalescing, and fan-out
//! costs are visible next to the transforms. Every result is verified
//! against the software reference, so the numbers are for *correct*
//! traffic. Wall-clock numbers are machine-dependent (the container is a
//! single-core VM); the wave-occupancy and waves-per-request ratios are
//! the portable signal.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bpntt_core::{BpNttConfig, BpNttError, FaultPlan, NttService, ServiceOptions, VerifyPolicy};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{NttParams, Polynomial, TwiddleTable};

struct Options {
    shards: usize,
    clients: u64,
    requests: u64,
    queue: usize,
    coalesce_us: u64,
    json_out: String,
    chaos_rate: f64,
    verify: VerifyPolicy,
}

fn parse_args() -> Options {
    let mut opts = Options {
        shards: 2,
        clients: 4,
        requests: 48,
        queue: 512,
        coalesce_us: 500,
        json_out: "bench_service_mixed.json".to_string(),
        chaos_rate: 0.0,
        verify: VerifyPolicy::Off,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--shards" => opts.shards = value("--shards").parse().expect("--shards integer"),
            "--clients" => opts.clients = value("--clients").parse().expect("--clients integer"),
            "--requests" => {
                opts.requests = value("--requests").parse().expect("--requests integer");
            }
            "--queue" => opts.queue = value("--queue").parse().expect("--queue integer"),
            "--coalesce-us" => {
                opts.coalesce_us = value("--coalesce-us")
                    .parse()
                    .expect("--coalesce-us integer");
            }
            "--json-out" => opts.json_out = value("--json-out"),
            "--chaos-rate" => {
                opts.chaos_rate = value("--chaos-rate").parse().expect("--chaos-rate float");
                assert!(
                    (0.0..=1.0).contains(&opts.chaos_rate),
                    "--chaos-rate must be in [0, 1]"
                );
            }
            "--verify" => {
                opts.verify = match value("--verify").as_str() {
                    "off" => VerifyPolicy::Off,
                    "range" => VerifyPolicy::Range,
                    "spot" => VerifyPolicy::SpotCheck { points: 2 },
                    "full" => VerifyPolicy::Full,
                    other => panic!("--verify must be off|range|spot|full, got {other}"),
                };
            }
            other => panic!(
                "unknown option {other} (see --shards/--clients/--requests/--queue/--coalesce-us/--json-out/--chaos-rate/--verify)"
            ),
        }
    }
    opts
}

fn pseudo(params: &NttParams, seed: u64) -> Vec<u64> {
    Polynomial::pseudo_random(params, seed).into_coeffs()
}

fn main() {
    let opts = parse_args();
    // 64-point Kyber-class workload: 2·64 + 6 = 134 rows, 14-bit tiles in
    // 256 columns → 18 lanes per shard.
    let params = NttParams::new(64, 7681).unwrap();
    let cfg = BpNttConfig::new(134, 256, 14, params.clone()).unwrap();
    let n = params.n();
    let q = params.modulus();
    let lanes_total = cfg.layout().lanes() * opts.shards;
    let twiddles = TwiddleTable::new(&params);

    let chaos = (opts.chaos_rate > 0.0)
        .then(|| FaultPlan::seeded(0xBEEF_CAFE).transient_rate(opts.chaos_rate));
    if chaos.is_some() && !opts.verify.is_active() {
        eprintln!(
            "warning: --chaos-rate without --verify will corrupt results; \
             the divergence assertions below are expected to fire"
        );
    }
    let service = NttService::start(
        &cfg,
        ServiceOptions {
            shards: opts.shards,
            max_queue: opts.queue,
            coalesce_window: Duration::from_micros(opts.coalesce_us),
            verify: opts.verify,
            retry_budget: if opts.verify.is_active() { 2 } else { 0 },
            fault_plan: chaos,
            ..ServiceOptions::default()
        },
    )
    .unwrap();

    let overload_retries = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..opts.clients {
            let service = &service;
            let params = &params;
            let twiddles = &twiddles;
            let overload_retries = &overload_retries;
            scope.spawn(move || {
                for r in 0..opts.requests {
                    let seed = c * 100_000 + r * 31 + 1;
                    if r % 3 == 2 {
                        let a = pseudo(params, seed);
                        let b = pseudo(params, seed + 13);
                        let ticket = loop {
                            match service.submit_polymul(a.clone(), b.clone()) {
                                Ok(t) => break t,
                                Err(BpNttError::Overloaded { .. }) => {
                                    overload_retries.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("submission failed: {e}"),
                            }
                        };
                        let got = ticket.wait().unwrap();
                        let expect = polymul_schoolbook(params, &a, &b).unwrap();
                        assert_eq!(got, expect, "polymul diverged (client {c}, req {r})");
                    } else {
                        let p = pseudo(params, seed);
                        let ticket = loop {
                            match service.submit_forward(p.clone()) {
                                Ok(t) => break t,
                                Err(BpNttError::Overloaded { .. }) => {
                                    overload_retries.fetch_add(1, Ordering::Relaxed);
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("submission failed: {e}"),
                            }
                        };
                        let got = ticket.wait().unwrap();
                        let mut expect = p.clone();
                        ntt_in_place(params, twiddles, &mut expect).unwrap();
                        assert_eq!(got, expect, "forward diverged (client {c}, req {r})");
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    let metrics = service.shutdown();
    let total_requests = opts.clients * opts.requests;
    let client_polys_per_sec = total_requests as f64 / wall;
    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);

    let mut json = String::from("{\n  \"benchmark\": \"service_mixed_throughput\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"n\": {n}, \"q\": {q}, \"cols\": 256, \"bitwidth\": 14, \"mix\": \"2:1 forward:polymul\", \"lanes_total\": {lanes_total}}},"
    );
    let _ = writeln!(
        json,
        "  \"options\": {{\"shards\": {}, \"clients\": {}, \"requests_per_client\": {}, \"max_queue\": {}, \"coalesce_us\": {}, \"chaos_rate\": {:e}, \"verify\": \"{:?}\"}},",
        opts.shards, opts.clients, opts.requests, opts.queue, opts.coalesce_us, opts.chaos_rate, opts.verify
    );
    let _ = write!(
        json,
        "  \"wall_s\": {wall:.3},\n  \"client_requests_per_sec\": {client_polys_per_sec:.1},\n  \"overload_retries\": {},\n",
        overload_retries.load(Ordering::Relaxed)
    );
    let _ = writeln!(json, "  \"service\": {},", metrics.to_json());
    let _ = write!(
        json,
        "  \"note\": \"wall-clock on the build machine; every result verified against the software NTT reference\",\n  \"available_parallelism\": {parallelism},\n  \"simd_active\": {}\n}}\n",
        bpntt_sram::simd_active()
    );
    std::fs::write(&opts.json_out, &json).expect("write benchmark JSON");

    println!(
        "{} clients × {} requests ({} total) in {:.2} s → {:.0} req/s observed by clients",
        opts.clients, opts.requests, total_requests, wall, client_polys_per_sec
    );
    println!(
        "service: {} waves, occupancy {:.2}, {:.0} polys/s busy, shard ms p50/p90/max {:.3}/{:.3}/{:.3}, {} rejected",
        metrics.waves,
        metrics.wave_occupancy,
        metrics.polys_per_sec,
        metrics.shard_secs_p50 * 1e3,
        metrics.shard_secs_p90 * 1e3,
        metrics.shard_secs_max * 1e3,
        metrics.rejected
    );
    if opts.chaos_rate > 0.0 || opts.verify.is_active() {
        println!(
            "recovery: {} faults detected, {} retries, {} shards quarantined, {} fallback polys, verify {:.2} ms",
            metrics.faults_detected,
            metrics.retries,
            metrics.quarantined_shards,
            metrics.fallback_polys,
            metrics.verify_ms
        );
        assert_eq!(
            metrics.failed, 0,
            "chaos run must complete every request (zero escapes, zero failures)"
        );
    }
    println!("wrote {}", opts.json_out);
}
