//! Emits `BENCH_replay.json`: the compile-once/replay-many perf
//! trajectory for future PRs. Run from the workspace root:
//!
//! ```text
//! cargo run --release -p bpntt-bench --bin bench_replay [-- OPTIONS]
//! ```
//!
//! Options:
//!
//! * `--cols A,B,...` — column geometries to sweep (default
//!   `48,96,144,256,512,1024` — the paper's ≤256-column points plus the
//!   HE-batch lane counts that exercise the multi-chunk
//!   register-resident word-engine).
//! * `--lanes N` — polynomials loaded per run (default: every lane the
//!   geometry provides; capped to the lane count).
//! * `--json-out PATH` — where to write the JSON (default
//!   `BENCH_replay.json`).
//!
//! Measurements are best-of-N interleaved wall-clock times on whatever
//! machine runs this (the container is a single-core VM; treat absolute
//! numbers as indicative and the emit/replay ratios as the signal).
//! `emit_ms` is strictly per-instruction emission
//! (`forward_mode(ExecMode::Generic)`) — the same baseline every prior
//! PR's trajectory used — and `speedup` keeps its historical meaning of
//! replay vs that baseline; `emit_fused_ms` is the fused emission path
//! (`ExecMode::FusedEmit`, which routes the generated stream through
//! the replay executors). Each config also reports the compiled forward
//! program's fused epilogue-superop count and the replay run's
//! fast-path coverage counters, so "the fast path silently stopped
//! firing" is visible in the JSON rather than a bench-regression
//! mystery.
//!
//! The `pipeline` block measures the op-graph API end to end on a
//! polymul-capable geometry (2·256 + 6 rows): `pipeline_polymul_ms` is
//! the canned polymul spec through `run_pipeline`, interleaved
//! in-process against the retained pre-pipeline `polymul`
//! implementation (`legacy_polymul_ms`) — the only trustworthy A/B on
//! this box — plus `spectral_polymul_ms`, the NTT-domain-cached product
//! (pointwise + scaled inverse on host-cached spectra) that skips both
//! forward transforms and one operand reload per product, and the
//! pipeline replay run's fast-path coverage counters.
//!
//! The `backend` block measures the backend HAL per geometry: the same
//! compiled polymul pipeline on the simulator backend
//! (`sim_polymul_ms`, full cost accounting) and the native
//! direct-execution backend (`native_polymul_ms`, accounting compiled
//! out — honest wall clock), interleaved against the Shoup software NTT
//! (`shoup_sw_polymul_ms`, Harvey's word-sized formulation: one
//! forward/forward/pointwise/inverse product per lane).
//! `native_vs_shoup` > 1 means the bit-parallel native backend beats
//! the software NTT on this box.
//!
//! The `rns` block measures the RNS/CRT multi-limb engine on a 3-limb
//! basis at N = 256: `fanned_ms` fans the limbs out concurrently (one
//! engine per residue prime), `sequential_ms` runs the same limbs back
//! to back on the same engines — the wave-occupancy gap between the two
//! (`occupancy_fanout` vs `occupancy_single_limb`) is the utilisation
//! the fan-out recovers — and `bigint_reference_ms` is the hand-rolled
//! bigint schoolbook product mod `Q` the reconstruction is verified
//! against (`reconstruction_exact`). `plan_cache_hits` counts compiled
//! plans a sibling context imported instead of recompiling.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bpntt_core::{
    new_backend, BackendKind, BigUint, BpNtt, BpNttConfig, ExecMode, PipelineSpec, RnsBasis,
    RnsContext, RnsPlanCache, ShardedBpNtt,
};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_ntt_with;
use bpntt_ntt::{NttParams, TwiddleTable};
use bpntt_rns::reference::negacyclic_polymul_basis;

struct Options {
    cols: Vec<usize>,
    lanes: Option<usize>,
    json_out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        cols: vec![48, 96, 144, 256, 512, 1024],
        lanes: None,
        json_out: "BENCH_replay.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--cols" => {
                opts.cols = value("--cols")
                    .split(',')
                    .map(|c| c.trim().parse().expect("--cols takes integers"))
                    .collect();
            }
            "--lanes" => opts.lanes = Some(value("--lanes").parse().expect("--lanes integer")),
            "--json-out" => opts.json_out = value("--json-out"),
            other => panic!("unknown option {other} (see --cols/--lanes/--json-out)"),
        }
    }
    opts
}

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

fn best_of<F: FnMut()>(reps: usize, inner: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

fn main() {
    let opts = parse_args();
    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = String::from(
        "{\n  \"benchmark\": \"dilithium256_forward_replay_vs_emit\",\n  \"configs\": [\n",
    );
    let mut first = true;
    for &cols in &opts.cols {
        let cfg = BpNttConfig::new(262, cols, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap();
        let lanes = opts
            .lanes
            .map_or(cfg.layout().lanes(), |l| l.min(cfg.layout().lanes()).max(1));
        let batch = pseudo_batch(&cfg, lanes, 1);

        let mut emit = BpNtt::new(cfg.clone()).unwrap();
        emit.load_batch(&batch).unwrap();
        let mut replay = BpNtt::new(cfg.clone()).unwrap();
        replay.load_batch(&batch).unwrap();
        replay.forward().unwrap();
        let fused_epilogue = replay.compiled_forward().unwrap().fused_epilogues();

        // Interleaved best-of to suppress machine noise: generic
        // emission (the trajectory baseline), fused emission, replay.
        let mut be = f64::MAX;
        let mut bf = f64::MAX;
        let mut br = f64::MAX;
        for _ in 0..8 {
            be = be.min(best_of(1, 3, || {
                emit.forward_mode(ExecMode::Generic).unwrap();
            }));
            bf = bf.min(best_of(1, 3, || {
                emit.forward_mode(ExecMode::FusedEmit).unwrap();
            }));
            br = br.min(best_of(1, 3, || replay.forward().unwrap()));
        }
        // Fast-path coverage of one replay call (the counters replay and
        // fused emission produce are asserted equal by the test suite).
        replay.reset_stats();
        replay.forward().unwrap();
        let fp = *replay.fastpath_stats();
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"cols\": {cols}, \"lanes\": {lanes}, \"emit_ms\": {:.3}, \"emit_fused_ms\": {:.3}, \"replay_ms\": {:.3}, \"speedup\": {:.2}, \"fused_emit_speedup\": {:.2}, \"fused_epilogue\": {fused_epilogue}, \"fastpath\": {{\"chains_resident\": {}, \"chains_per_step\": {}, \"resolve_loops_resident\": {}, \"borrow_loops_resident\": {}, \"superops_fused\": {}, \"fallbacks\": {}}}}}",
            be * 1e3,
            bf * 1e3,
            br * 1e3,
            be / br,
            be / bf,
            fp.chains_resident,
            fp.chains_per_step,
            fp.resolve_loops_resident,
            fp.borrow_loops_resident,
            fp.superops_fused,
            fp.fallbacks
        );
        println!(
            "cols={cols} lanes={lanes}: emit {:.2} ms, fused-emit {:.2} ms, replay {:.2} ms, speedup {:.2}x (fused emit {:.2}x), {fused_epilogue} fused epilogues, fastpath[{fp}]",
            be * 1e3,
            bf * 1e3,
            br * 1e3,
            be / br,
            be / bf,
        );
    }
    json.push_str("\n  ],\n");

    // ---- pipeline A/B: the op-graph API vs the retained fixed-shape
    // polymul, interleaved in-process (the only trustworthy signal on a
    // noisy single-core box), on a polymul-capable geometry.
    {
        let params = NttParams::new(256, 8_380_417).unwrap();
        let cfg = BpNttConfig::new(518, 256, 24, params.clone()).unwrap();
        let lanes = opts
            .lanes
            .map_or(cfg.layout().lanes(), |l| l.min(cfg.layout().lanes()).max(1));
        let a = pseudo_batch(&cfg, lanes, 11);
        let b = pseudo_batch(&cfg, lanes, 12);
        let spec = PipelineSpec::polymul();

        let mut legacy = BpNtt::new(cfg.clone()).unwrap();
        legacy.polymul_legacy(&a, &b).unwrap();
        let mut piped = BpNtt::new(cfg.clone()).unwrap();
        // Compile once, execute many — the FFTW-style usage the API is
        // built around; legacy polymul re-derives its four program keys
        // (and the n⁻¹·R² constant) on every call.
        let plan = piped.compile_pipeline(&spec).unwrap();

        // Host-cached spectra for the NTT-domain-cached product.
        let t = TwiddleTable::new(&params);
        let to_spectra = |polys: &[Vec<u64>]| -> Vec<Vec<u64>> {
            polys
                .iter()
                .map(|p| {
                    let mut s = p.clone();
                    ntt_in_place(&params, &t, &mut s).unwrap();
                    s
                })
                .collect()
        };
        let (sa, sb) = (to_spectra(&a), to_spectra(&b));
        let spectral = PipelineSpec::polymul_spectral();
        piped
            .run_pipeline(&spectral, ExecMode::Replay, &[&sa, &sb])
            .unwrap();

        let mut bl = f64::MAX;
        let mut bp = f64::MAX;
        let mut bs = f64::MAX;
        for _ in 0..8 {
            bl = bl.min(best_of(1, 3, || {
                legacy.polymul_legacy(&a, &b).unwrap();
            }));
            bp = bp.min(best_of(1, 3, || {
                piped
                    .run_compiled_pipeline(&plan, ExecMode::Replay, &[&a, &b])
                    .unwrap();
            }));
            bs = bs.min(best_of(1, 3, || {
                piped
                    .run_pipeline(&spectral, ExecMode::Replay, &[&sa, &sb])
                    .unwrap();
            }));
        }
        // Fast-path coverage of one pipeline replay run.
        piped.reset_stats();
        piped
            .run_compiled_pipeline(&plan, ExecMode::Replay, &[&a, &b])
            .unwrap();
        let fp = *piped.fastpath_stats();
        let _ = writeln!(
            json,
            "  \"pipeline\": {{\"rows\": 518, \"cols\": 256, \"lanes\": {lanes}, \"legacy_polymul_ms\": {:.3}, \"pipeline_polymul_ms\": {:.3}, \"pipeline_vs_legacy\": {:.3}, \"spectral_polymul_ms\": {:.3}, \"fastpath\": {{\"chains_resident\": {}, \"chains_per_step\": {}, \"resolve_loops_resident\": {}, \"borrow_loops_resident\": {}, \"superops_fused\": {}, \"fallbacks\": {}}}}},",
            bl * 1e3,
            bp * 1e3,
            bl / bp,
            bs * 1e3,
            fp.chains_resident,
            fp.chains_per_step,
            fp.resolve_loops_resident,
            fp.borrow_loops_resident,
            fp.superops_fused,
            fp.fallbacks
        );
        println!(
            "pipeline (518x256, {lanes} lanes): legacy polymul {:.2} ms, pipeline polymul {:.2} ms ({:.3}x), spectral (NTT-domain-cached) {:.2} ms, fastpath[{fp}]",
            bl * 1e3,
            bp * 1e3,
            bl / bp,
            bs * 1e3,
        );
    }

    // ---- backend dimension: the native direct-execution backend (cost
    // accounting compiled out, same compiled programs) against the Shoup
    // software NTT (Harvey-style word-sized baseline: forward both
    // operands, pointwise, inverse — one product per lane), per
    // geometry. The simulator backend runs interleaved too, so the JSON
    // shows what the cost accounting itself costs in wall clock.
    json.push_str("  \"backend\": [\n");
    {
        let params = NttParams::new(256, 8_380_417).unwrap();
        let t = TwiddleTable::new(&params);
        let mut first = true;
        for &cols in &opts.cols {
            // Polymul needs two operand slots: 2·256 + 6 rows.
            let cfg = BpNttConfig::new(518, cols, 24, params.clone()).unwrap();
            let lanes = opts
                .lanes
                .map_or(cfg.layout().lanes(), |l| l.min(cfg.layout().lanes()).max(1));
            let a = pseudo_batch(&cfg, lanes, 21);
            let b = pseudo_batch(&cfg, lanes, 22);
            let spec = PipelineSpec::polymul();

            let mut sim = new_backend(BackendKind::Sim, &cfg).unwrap();
            let plan = sim.compile(&spec).unwrap();
            let mut native = new_backend(BackendKind::Native, &cfg).unwrap();
            native.install_pipeline(&plan);

            // Interleaved best-of: sim backend, native backend, Shoup
            // software NTT (the per-lane batch does `lanes` products per
            // timed call on every contender).
            let mut bsim = f64::MAX;
            let mut bnat = f64::MAX;
            let mut bsw = f64::MAX;
            for _ in 0..8 {
                bsim = bsim.min(best_of(1, 3, || {
                    sim.execute(&plan, ExecMode::Replay, &[&a, &b]).unwrap();
                }));
                bnat = bnat.min(best_of(1, 3, || {
                    native.execute(&plan, ExecMode::Replay, &[&a, &b]).unwrap();
                }));
                bsw = bsw.min(best_of(1, 3, || {
                    for (pa, pb) in a.iter().zip(&b) {
                        polymul_ntt_with(&params, &t, pa, pb).unwrap();
                    }
                }));
            }
            if !first {
                json.push_str(",\n");
            }
            first = false;
            let _ = write!(
                json,
                "    {{\"cols\": {cols}, \"lanes\": {lanes}, \"sim_polymul_ms\": {:.3}, \"native_polymul_ms\": {:.3}, \"shoup_sw_polymul_ms\": {:.3}, \"native_vs_sim\": {:.2}, \"native_vs_shoup\": {:.3}}}",
                bsim * 1e3,
                bnat * 1e3,
                bsw * 1e3,
                bsim / bnat,
                bsw / bnat
            );
            println!(
                "backend cols={cols} lanes={lanes}: sim {:.2} ms, native {:.2} ms ({:.2}x vs sim), shoup software {:.2} ms (native is {:.3}x the software NTT)",
                bsim * 1e3,
                bnat * 1e3,
                bsim / bnat,
                bsw * 1e3,
                bsw / bnat,
            );
        }
    }
    json.push_str("\n  ],\n");

    json.push_str("  \"sharded\": [\n");

    // Sharded trajectory rows stay at the paper's 256-column geometry
    // when it is in the sweep (continuity with prior PRs' JSON).
    let cols_sharded = if opts.cols.contains(&256) {
        256
    } else {
        *opts.cols.last().unwrap_or(&256)
    };
    let cfg = BpNttConfig::new(
        262,
        cols_sharded,
        24,
        NttParams::new(256, 8_380_417).unwrap(),
    )
    .unwrap();
    let lanes = cfg.layout().lanes();
    let mut first = true;
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedBpNtt::new(&cfg, shards).unwrap();
        let batch = pseudo_batch(&cfg, shards * lanes, 7);
        sharded.forward_batch(&batch).unwrap();
        let t = best_of(4, 2, || {
            sharded.forward_batch(&batch).unwrap();
        });
        let shard_ms: Vec<String> = sharded
            .last_wave_shard_secs()
            .iter()
            .map(|s| format!("{:.3}", s * 1e3))
            .collect();
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"shards\": {shards}, \"polys\": {}, \"batch_ms\": {:.3}, \"polys_per_sec\": {:.0}, \"shard_ms\": [{}]}}",
            batch.len(),
            t * 1e3,
            batch.len() as f64 / t,
            shard_ms.join(", ")
        );
        println!(
            "shards={shards}: {} polys in {:.2} ms ({:.0} polys/s; per-shard [{}] ms)",
            batch.len(),
            t * 1e3,
            batch.len() as f64 / t,
            shard_ms.join(", ")
        );
    }
    json.push_str("\n  ],\n");

    // ---- RNS dimension: a 3-limb (~42-bit Q) negacyclic polymul at
    // N = 256, limbs fanned out concurrently vs run back to back on the
    // same engines, verified against the bigint reference product.
    {
        let basis = Arc::new(RnsBasis::new(256, &[12289, 13313, 15361]).unwrap());
        let cache = RnsPlanCache::new();
        let mut ctx = RnsContext::with_plan_cache(
            Arc::clone(&basis),
            518,
            cols_sharded,
            16,
            basis.limbs(),
            BackendKind::Sim,
            cache.clone(),
        )
        .unwrap();
        let spec = PipelineSpec::polymul();
        let mut x = 0xB16B_u64 | 1;
        let mut big = |count: usize| -> Vec<BigUint> {
            (0..count)
                .map(|_| {
                    let mut limbs = Vec::with_capacity(2);
                    for _ in 0..2 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        limbs.push(x);
                    }
                    BigUint::from_limbs(limbs).rem(basis.modulus())
                })
                .collect()
        };
        let a = big(256);
        let b = big(256);
        let slots_a = vec![a.clone()];
        let slots_b = vec![b.clone()];
        let inputs: Vec<&[Vec<BigUint>]> = vec![&slots_a, &slots_b];

        // Warm the compiled plans, then interleaved best-of.
        let fanned_out = ctx.run_rns_batch(&spec, ExecMode::Replay, &inputs).unwrap();
        let mut bf = f64::MAX;
        let mut bs = f64::MAX;
        let mut bref = f64::MAX;
        for _ in 0..6 {
            bf = bf.min(best_of(1, 2, || {
                ctx.run_rns_batch(&spec, ExecMode::Replay, &inputs).unwrap();
            }));
        }
        let occupancy_fanout = ctx.last_wave().occupancy;
        for _ in 0..6 {
            bs = bs.min(best_of(1, 2, || {
                ctx.run_limbs_sequential(&spec, ExecMode::Replay, &inputs)
                    .unwrap();
            }));
        }
        let occupancy_single = ctx.last_wave().occupancy;
        for _ in 0..6 {
            bref = bref.min(best_of(1, 1, || {
                negacyclic_polymul_basis(&a, &b, &basis).unwrap();
            }));
        }
        let expect = negacyclic_polymul_basis(&a, &b, &basis).unwrap();
        let exact = fanned_out[0] == expect;

        // A sibling context over the same shared cache imports every
        // limb's compiled plans instead of recompiling.
        let mut sibling = RnsContext::with_plan_cache(
            Arc::clone(&basis),
            518,
            cols_sharded,
            16,
            basis.limbs(),
            BackendKind::Sim,
            cache.clone(),
        )
        .unwrap();
        sibling.compile(&spec).unwrap();
        let plan_cache_hits = cache.hits();

        let _ = writeln!(
            json,
            "  \"rns\": {{\"n\": 256, \"limbs\": {}, \"modulus_bits\": {}, \"cols\": {cols_sharded}, \"fanned_ms\": {:.3}, \"sequential_ms\": {:.3}, \"fanout_speedup\": {:.2}, \"bigint_reference_ms\": {:.3}, \"occupancy_fanout\": {:.3}, \"occupancy_single_limb\": {:.3}, \"plan_cache_hits\": {plan_cache_hits}, \"reconstruction_exact\": {exact}}},",
            basis.limbs(),
            basis.modulus_bits(),
            bf * 1e3,
            bs * 1e3,
            bs / bf,
            bref * 1e3,
            occupancy_fanout,
            occupancy_single,
        );
        println!(
            "rns (3 limbs, {}-bit Q, N=256): fanned {:.2} ms, sequential {:.2} ms ({:.2}x), bigint reference {:.2} ms, occupancy {:.3} fanned vs {:.3} single-limb, {plan_cache_hits} plan-cache hits, reconstruction exact: {exact}",
            basis.modulus_bits(),
            bf * 1e3,
            bs * 1e3,
            bs / bf,
            bref * 1e3,
            occupancy_fanout,
            occupancy_single,
        );
        assert!(
            exact,
            "RNS reconstruction diverged from the bigint reference"
        );
    }

    let _ = write!(
        json,
        "  \"note\": \"wall-clock best-of on the build machine; emit_ms is strictly per-instruction emission (the historical baseline), emit_fused_ms routes emission through the fused replay executors; available_parallelism={parallelism}, so shard threads serialize when 1 and flat polys_per_sec scaling is expected\",\n  \"available_parallelism\": {parallelism},\n  \"simd_active\": {}\n}}\n",
        bpntt_sram::simd_active()
    );
    std::fs::write(&opts.json_out, &json).expect("write benchmark JSON");
    println!("wrote {}", opts.json_out);
}
