//! Emits `BENCH_replay.json`: the compile-once/replay-many perf
//! trajectory for future PRs. Run from the workspace root:
//!
//! ```text
//! cargo run --release -p bpntt-bench --bin bench_replay
//! ```
//!
//! Measurements are best-of-N interleaved wall-clock times on whatever
//! machine runs this (the container is a single-core VM; treat absolute
//! numbers as indicative and the emit/replay ratios as the signal).

use std::fmt::Write as _;
use std::time::Instant;

use bpntt_core::{BpNtt, BpNttConfig, ShardedBpNtt};
use bpntt_ntt::NttParams;

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

fn best_of<F: FnMut()>(reps: usize, inner: usize, mut f: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / inner as f64);
    }
    best
}

fn main() {
    let mut json = String::from(
        "{\n  \"benchmark\": \"dilithium256_forward_replay_vs_emit\",\n  \"configs\": [\n",
    );
    let mut first = true;
    for cols in [48usize, 96, 144, 256] {
        let cfg = BpNttConfig::new(262, cols, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap();
        let lanes = cfg.layout().lanes();
        let batch = pseudo_batch(&cfg, lanes, 1);

        let mut emit = BpNtt::new(cfg.clone()).unwrap();
        emit.load_batch(&batch).unwrap();
        let mut replay = BpNtt::new(cfg.clone()).unwrap();
        replay.load_batch(&batch).unwrap();
        replay.forward().unwrap();

        // Interleaved best-of to suppress machine noise.
        let mut be = f64::MAX;
        let mut br = f64::MAX;
        for _ in 0..8 {
            be = be.min(best_of(1, 3, || emit.forward_uncached().unwrap()));
            br = br.min(best_of(1, 3, || replay.forward().unwrap()));
        }
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"cols\": {cols}, \"lanes\": {lanes}, \"emit_ms\": {:.3}, \"replay_ms\": {:.3}, \"speedup\": {:.2}}}",
            be * 1e3,
            br * 1e3,
            be / br
        );
        println!(
            "cols={cols} lanes={lanes}: emit {:.2} ms, replay {:.2} ms, speedup {:.2}x",
            be * 1e3,
            br * 1e3,
            be / br
        );
    }
    json.push_str("\n  ],\n  \"sharded\": [\n");

    let cfg = BpNttConfig::new(262, 256, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap();
    let lanes = cfg.layout().lanes();
    let mut first = true;
    for shards in [1usize, 2, 4] {
        let mut sharded = ShardedBpNtt::new(&cfg, shards).unwrap();
        let batch = pseudo_batch(&cfg, shards * lanes, 7);
        sharded.forward_batch(&batch).unwrap();
        let t = best_of(4, 2, || {
            sharded.forward_batch(&batch).unwrap();
        });
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            json,
            "    {{\"shards\": {shards}, \"polys\": {}, \"batch_ms\": {:.3}, \"polys_per_sec\": {:.0}}}",
            batch.len(),
            t * 1e3,
            batch.len() as f64 / t
        );
        println!(
            "shards={shards}: {} polys in {:.2} ms ({:.0} polys/s)",
            batch.len(),
            t * 1e3,
            batch.len() as f64 / t
        );
    }
    json.push_str("\n  ],\n  \"note\": \"wall-clock best-of on the build machine; sharded scaling requires multiple cores\"\n}\n");
    std::fs::write("BENCH_replay.json", &json).expect("write BENCH_replay.json");
    println!("wrote BENCH_replay.json");
}
