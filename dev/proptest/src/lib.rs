//! Offline, in-repo shim for the subset of the [proptest](https://docs.rs/proptest)
//! API this workspace uses.
//!
//! The build container has no network and no vendored registry, so the real
//! proptest cannot be fetched. This shim keeps the test sources
//! API-compatible (swap the path dependency for the real crate to get
//! shrinking and persistence) and provides deterministic pseudo-random case
//! generation: every `#[test]` inside [`proptest!`] runs `cases` inputs
//! drawn from a fixed-seed SplitMix64 stream, so failures reproduce
//! exactly.

#![forbid(unsafe_code)]

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case; seeds differ per case but are fixed across
    /// runs so failures are reproducible.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15_u64.wrapping_add(case.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of test values, mirroring proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|i| self[i].generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for collection strategies (mirrors
    /// proptest's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Vectors of values from `element` with lengths from `len`
    /// (e.g. `vec(0u64..100, 1..8)`).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.lo + rng.below((self.len.hi - self.len.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (mirrors `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    { $body }
                }
            }
        )*
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5u32..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_case(1);
        let s = (1u32..=4).prop_flat_map(|w| (Just(w), (0u64..1u64 << w)));
        for _ in 0..100 {
            let (w, v) = s.generate(&mut rng);
            assert!(v < 1 << w);
        }
        let doubled = (0u64..10).prop_map(|x| x * 2);
        assert!(doubled.generate(&mut rng) % 2 == 0);
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            let v = collection::vec(0u64..5, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases((w, q) in (3u32..=8).prop_flat_map(|w| (Just(w), 1u64..(1 << w))), flip in any::<bool>()) {
            prop_assert!(q < 1 << w);
            let _ = flip;
        }
    }
}
