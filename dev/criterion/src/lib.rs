//! Offline, in-repo shim for the subset of the [criterion](https://docs.rs/criterion)
//! API this workspace uses.
//!
//! The build container has no network and no vendored registry, so the real
//! criterion cannot be fetched. This shim keeps the bench sources
//! API-compatible (swap the path dependency for the real crate to get full
//! statistics) while still producing *real wall-clock measurements*: each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! target measurement window, and the mean ns/iteration is printed.
//!
//! Environment knobs:
//!
//! * `BENCH_QUICK=1` — shrink the measurement window ~10× (used by CI to
//!   smoke-run every bench without burning minutes).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works like the real crate.
pub use std::hint::black_box;

fn measurement_window() -> Duration {
    if std::env::var_os("BENCH_QUICK").is_some() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(300)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
    window: Duration,
}

impl Bencher {
    /// Times `f`: warm-up, then as many iterations as fit the measurement
    /// window, reporting the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how long does one iteration take?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = self.window;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// Identifies one benchmark within a group, mirroring criterion's type.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall-clock
    /// window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no plot output in the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate in the shim; nothing to do).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, |b| f(b));
        self
    }

    fn run_one(&mut self, full_name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            ns_per_iter: f64::NAN,
            window: measurement_window(),
        };
        f(&mut b);
        println!("{full_name:<56} time: {}", format_ns(b.ns_per_iter));
        self.results.push((full_name.to_string(), b.ns_per_iter));
    }

    /// All `(name, ns_per_iter)` results measured so far.
    #[must_use]
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "(not measured)".to_string()
    } else if ns >= 1e9 {
        format!("{:>10.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_loop", |b| b.iter(|| black_box(3u64) * 7));
        let (name, ns) = &c.results()[0];
        assert_eq!(name, "noop_loop");
        assert!(*ns > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| x * x);
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].0.starts_with("g/sq"));
    }
}
