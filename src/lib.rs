//! Umbrella crate for the BP-NTT workspace: re-exports every layer so the
//! `examples/` directory and downstream users can depend on one crate.
//!
//! The layers, bottom to top:
//!
//! * [`modmath`] — word-level modular arithmetic oracles (Montgomery,
//!   Shoup, carry-save, Algorithm 2 word model);
//! * [`sram`] — the bit-accurate in-SRAM computing simulator and its
//!   compiled-program replay fast path;
//! * [`ntt`] — software reference NTT (forward/inverse/polymul);
//! * [`core`] — the BP-NTT accelerator engine (layout, kernels,
//!   compile-once/replay-many programs, sharded batch execution);
//! * [`net`] — the length-prefixed TCP front-end over the core service
//!   (framing, per-tenant fairness, admission control);
//! * [`baselines`], [`cachesim`], [`eval`] — comparison designs and the
//!   paper-figure evaluation harness.

#![forbid(unsafe_code)]

pub use bpntt_baselines as baselines;
pub use bpntt_cachesim as cachesim;
pub use bpntt_core as core;
pub use bpntt_eval as eval;
pub use bpntt_modmath as modmath;
pub use bpntt_net as net;
pub use bpntt_ntt as ntt;
pub use bpntt_sram as sram;
