//! Kyber-flavoured polynomial multiplication, two ways.
//!
//! ```text
//! cargo run --release --example kyber_polymul
//! ```
//!
//! 1. **On the accelerator**: full negacyclic products over the original
//!    Kyber prime `q = 7681` (256-point NTT → pointwise with data-driven
//!    multipliers → inverse NTT), entirely inside one SRAM bank slice.
//! 2. **In software**: FIPS-203 Kyber (`q = 3329`) via the truncated
//!    seven-layer NTT with degree-1 base multiplication — the "generality"
//!    case the paper claims BP-NTT covers.

use bpntt_core::{BpNtt, BpNttConfig, ExecMode, PipelineSpec};
use bpntt_ntt::incomplete::{negacyclic_schoolbook, IncompleteNtt};
use bpntt_ntt::{polymul, NttParams, Polynomial};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- accelerator path: q = 7681 (Kyber v1), 14-bit words -------------
    // Polynomial products need both operands resident: 2·256 + 6 rows.
    // A 520×256 slice models two stacked subarrays of the same bank.
    let params = NttParams::new(256, 7681)?;
    let cfg = BpNttConfig::new(520, 256, 14, params.clone())?;
    let lanes = cfg.layout().lanes();
    println!("accelerator polymul: {lanes} lanes over Z_7681[x]/(x^256+1)");
    let batch = 4.min(lanes);
    let a: Vec<Vec<u64>> = (0..batch as u64)
        .map(|s| Polynomial::pseudo_random(&params, s + 10).into_coeffs())
        .collect();
    let b: Vec<Vec<u64>> = (0..batch as u64)
        .map(|s| Polynomial::pseudo_random(&params, s + 20).into_coeffs())
        .collect();

    let mut acc = BpNtt::new(cfg)?;
    // `polymul` is the canned pipeline spec — forward, forward,
    // pointwise, debt-folded inverse — compiled once and replayed.
    let products = acc.polymul(&a, &b)?;
    for lane in 0..batch {
        let expect = polymul::polymul_schoolbook(&params, &a[lane], &b[lane])?;
        assert_eq!(
            products[lane], expect,
            "lane {lane} diverged from schoolbook"
        );
    }
    println!("  {batch} products verified against schoolbook");
    // The same graph as an explicit pipeline, one compiled object.
    let again = acc.run_pipeline(&PipelineSpec::polymul(), ExecMode::Replay, &[&a, &b])?;
    assert_eq!(again, products, "explicit pipeline ≡ canned polymul");
    println!(
        "  explicit PipelineSpec::polymul() replayed identically ({} cached pipelines)",
        acc.cached_pipelines()
    );
    println!("  simulator:\n{}", acc.stats());

    // ---- software path: FIPS-203 Kyber (q = 3329, incomplete NTT) --------
    let kyber = IncompleteNtt::kyber()?;
    let mut x = 0xC0FFEEu64;
    let mut rand = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % 3329
    };
    let fa: Vec<u64> = (0..256).map(|_| rand()).collect();
    let fb: Vec<u64> = (0..256).map(|_| rand()).collect();
    let got = kyber.polymul(&fa, &fb)?;
    assert_eq!(got, negacyclic_schoolbook(&fa, &fb, 3329));
    println!("\nFIPS-203 Kyber (q=3329): 7-layer incomplete NTT + basemul verified");
    println!(
        "  (psi = {}, residue degree {})",
        kyber.psi(),
        kyber.residue_degree()
    );
    Ok(())
}
