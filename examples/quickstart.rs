//! Quickstart: run the paper's headline configuration end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Loads 16 random 256-point polynomials (one per 16-bit tile), runs the
//! in-SRAM forward NTT, checks every lane against the software reference,
//! and prints the Table-I-style performance report.

use bpntt_core::{BpNtt, BpNttConfig, PerfReport};
use bpntt_ntt::{forward, Polynomial, TwiddleTable};
use bpntt_sram::geometry::{AreaModel, FrequencyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design point: 262×256 array (256 data rows + 6 intermediate),
    //    16-bit tiles, 256-point negacyclic NTT mod 12289.
    let cfg = BpNttConfig::paper_256pt_16bit()?;
    let geometry = cfg.geometry();
    let params = cfg.params().clone();
    let lanes = cfg.layout().lanes();
    println!(
        "BP-NTT quickstart: {} lanes × {}-point NTT mod {} on a {}×{} array",
        lanes,
        params.n(),
        params.modulus(),
        cfg.rows(),
        cfg.cols()
    );

    // 2. A batch of pseudo-random polynomials.
    let polys: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|lane| Polynomial::pseudo_random(&params, lane + 1).into_coeffs())
        .collect();

    // 3. Run the accelerator.
    let mut acc = BpNtt::new(cfg)?;
    acc.load_batch(&polys)?;
    acc.reset_stats(); // measure the transform itself
    acc.forward()?;
    let spectra = acc.read_batch(lanes)?;

    // 4. Validate every lane against the software reference.
    let twiddles = TwiddleTable::new(&params);
    for (lane, poly) in polys.iter().enumerate() {
        let mut expect = poly.clone();
        forward::ntt_in_place(&params, &twiddles, &mut expect)?;
        assert_eq!(spectra[lane], expect, "lane {lane} diverged");
    }
    println!("all {lanes} lanes match the software NTT\n");

    // 5. The performance report in the paper's units.
    let report = PerfReport::from_stats(
        acc.stats(),
        lanes,
        geometry,
        &AreaModel::cmos_45nm(),
        &FrequencyModel::cmos_45nm(),
    );
    println!("{report}");
    println!("\n(paper Table I: 61.9 us, 258.6 kNTT/s, 69.4 nJ, 0.063 mm2, 230.7 kNTT/mJ)");
    Ok(())
}
