//! Throwaway profiling harness (deleted before merge).
use bpntt::sram::*;
use bpntt::sram::program::ZeroLoopSpec;
use std::time::Instant;

fn mk() -> Controller { Controller::new(SramArray::new(262, 240).unwrap(), 24).unwrap() }

fn rowpat(seed: u64) -> BitRow {
    let mut r = BitRow::zero(240);
    let mut x = seed | 1;
    for t in 0..10 { x ^= x<<13; x ^= x>>7; x ^= x<<17; r.set_tile_word(t, 24, x & 0x7F_FFFF); }
    r
}

fn time_it(name: &str, rec: Recorder, per: usize) {
    let mut ctl = mk();
    ctl.load_data_row(250, rowpat(1));
    ctl.load_data_row(254, rowpat(2));
    ctl.load_data_row(255, rowpat(3));
    let prog = rec.finish().compile(&ctl).unwrap();
    let best = (0..5).map(|_| {
        let t = Instant::now();
        ctl.run_compiled(&prog).unwrap();
        t.elapsed().as_nanos() as f64 / per as f64
    }).fold(f64::MAX, f64::min);
    println!("{name}: {best:.0} ns/unit");
}

fn main() {
    let (s, c, ts, tc, b, m) = (RowAddr(250), RowAddr(251), RowAddr(252), RowAddr(253), RowAddr(254), RowAddr(255));
    let n = 2000usize;

    // 1. modmul chain (24 bits, ~half AddB)
    let mut rec = Recorder::new();
    for _ in 0..n {
        for bit in 0..24 {
            if bit % 2 == 0 {
                for i in [
                    Instruction::Binary { dst: tc, op: BitOp::And, src0: s, src1: b, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
                    Instruction::Shift { dst: c, src: c, dir: ShiftDir::Left, masked: false, pred: PredMode::Always },
                    Instruction::Binary { dst: c, op: BitOp::And, src0: c, src1: ts, dst2: Some((s, BitOp::Xor)), shift: None, pred: PredMode::Always },
                    Instruction::Binary { dst: c, op: BitOp::Or, src0: c, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
                ] { rec.emit(i).unwrap(); }
            }
            for i in [
                Instruction::Check { src: s, bit: 0 },
                Instruction::Binary { dst: ts, op: BitOp::Xor, src0: s, src1: m, dst2: Some((tc, BitOp::And)), shift: Some((ShiftDir::Right, true)), pred: PredMode::IfSet },
                Instruction::Shift { dst: ts, src: s, dir: ShiftDir::Right, masked: true, pred: PredMode::IfClear },
                Instruction::Unary { dst: tc, src: tc, kind: UnaryKind::Zero, pred: PredMode::IfClear },
                Instruction::Binary { dst: tc, op: BitOp::And, src0: ts, src1: tc, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
                Instruction::Binary { dst: c, op: BitOp::And, src0: c, src1: ts, dst2: Some((s, BitOp::Xor)), shift: None, pred: PredMode::Always },
                Instruction::Binary { dst: c, op: BitOp::Or, src0: c, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
            ] { rec.emit(i).unwrap(); }
        }
    }
    time_it("modmul chain (36 groups)", rec, n);

    // 1b. pure AddB chain
    let mut rec = Recorder::new();
    for _ in 0..n {
        for _bit in 0..24 {
            for i in [
                Instruction::Binary { dst: tc, op: BitOp::And, src0: s, src1: b, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
                Instruction::Shift { dst: c, src: c, dir: ShiftDir::Left, masked: false, pred: PredMode::Always },
                Instruction::Binary { dst: c, op: BitOp::And, src0: c, src1: ts, dst2: Some((s, BitOp::Xor)), shift: None, pred: PredMode::Always },
                Instruction::Binary { dst: c, op: BitOp::Or, src0: c, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
                Instruction::Check { src: s, bit: 0 },
                Instruction::Binary { dst: ts, op: BitOp::Xor, src0: s, src1: m, dst2: Some((tc, BitOp::And)), shift: Some((ShiftDir::Right, true)), pred: PredMode::IfSet },
                Instruction::Shift { dst: ts, src: s, dir: ShiftDir::Right, masked: true, pred: PredMode::IfClear },
                Instruction::Unary { dst: tc, src: tc, kind: UnaryKind::Zero, pred: PredMode::IfClear },
                Instruction::Binary { dst: tc, op: BitOp::And, src0: ts, src1: tc, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
                Instruction::Binary { dst: c, op: BitOp::And, src0: c, src1: ts, dst2: Some((s, BitOp::Xor)), shift: None, pred: PredMode::Always },
                Instruction::Binary { dst: c, op: BitOp::Or, src0: c, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
            ] { rec.emit(i).unwrap(); }
        }
    }
    time_it("48-group chain (24 AddB + 24 Halve)", rec, n);

    // 2. resolve loop with refilled data each time (realistic rounds)
    let mut rec = Recorder::new();
    let body = [
        Instruction::Shift { dst: c, src: c, dir: ShiftDir::Left, masked: true, pred: PredMode::Always },
        Instruction::Binary { dst: c, op: BitOp::And, src0: s, src1: c, dst2: Some((s, BitOp::Xor)), shift: None, pred: PredMode::Always },
    ];
    let fill = rowpat(77);
    for _ in 0..n {
        InstrSink::load_row(&mut rec, c, &fill).unwrap();
        InstrSink::zero_loop(&mut rec, ZeroLoopSpec { src: c, even_body: &body, odd_body: &body, max_checks: 25, odd_epilogue: &[] }).unwrap();
    }
    time_it("load + resolve loop", rec, n);

    // 3. borrow loop with refilled data
    let mut rec = Recorder::new();
    let even = [
        Instruction::Shift { dst: tc, src: tc, dir: ShiftDir::Left, masked: true, pred: PredMode::Always },
        Instruction::Binary { dst: c, op: BitOp::Xor, src0: ts, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
        Instruction::Binary { dst: tc, op: BitOp::And, src0: c, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
    ];
    let odd = [
        Instruction::Shift { dst: tc, src: tc, dir: ShiftDir::Left, masked: true, pred: PredMode::Always },
        Instruction::Binary { dst: ts, op: BitOp::Xor, src0: c, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
        Instruction::Binary { dst: tc, op: BitOp::And, src0: ts, src1: tc, dst2: None, shift: None, pred: PredMode::Always },
    ];
    let epi = [Instruction::Unary { dst: ts, src: c, kind: UnaryKind::Copy, pred: PredMode::Always }];
    for _ in 0..n {
        InstrSink::load_row(&mut rec, tc, &fill).unwrap();
        InstrSink::zero_loop(&mut rec, ZeroLoopSpec { src: tc, even_body: &even, odd_body: &odd, max_checks: 25, odd_epilogue: &epi }).unwrap();
    }
    time_it("load + borrow loop", rec, n);

    // 4. generic mix (cond_sub/sub_mod/add_mod style remainder): ~15 instrs
    let mut rec = Recorder::new();
    for _ in 0..n {
        for i in [
            Instruction::Binary { dst: tc, op: BitOp::And, src0: s, src1: m, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
            Instruction::Check { src: ts, bit: 23 },
            Instruction::Unary { dst: s, src: ts, kind: UnaryKind::Copy, pred: PredMode::IfClear },
            Instruction::Binary { dst: ts, op: BitOp::Xor, src0: s, src1: m, dst2: None, shift: None, pred: PredMode::Always },
            Instruction::Binary { dst: tc, op: BitOp::And, src0: ts, src1: m, dst2: None, shift: None, pred: PredMode::Always },
            Instruction::Check { src: ts, bit: 23 },
            Instruction::Unary { dst: c, src: c, kind: UnaryKind::Zero, pred: PredMode::Always },
            Instruction::Unary { dst: c, src: m, kind: UnaryKind::Copy, pred: PredMode::IfSet },
            Instruction::Binary { dst: tc, op: BitOp::And, src0: ts, src1: c, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
            Instruction::Binary { dst: tc, op: BitOp::And, src0: s, src1: b, dst2: Some((ts, BitOp::Xor)), shift: None, pred: PredMode::Always },
            Instruction::Check { src: c, bit: 23 },
            Instruction::Unary { dst: s, src: ts, kind: UnaryKind::Copy, pred: PredMode::IfSet },
            Instruction::Unary { dst: s, src: c, kind: UnaryKind::Copy, pred: PredMode::IfClear },
            Instruction::Unary { dst: ts, src: s, kind: UnaryKind::Copy, pred: PredMode::Always },
            Instruction::Unary { dst: c, src: ts, kind: UnaryKind::Copy, pred: PredMode::Always },
        ] { rec.emit(i).unwrap(); }
    }
    time_it("generic 15-instr mix", rec, n);
}
