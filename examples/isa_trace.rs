//! A look inside the machine: the Fig. 6 algorithm trace, the instruction
//! encoding of Fig. 4(d), and a few live controller steps.
//!
//! ```text
//! cargo run --example isa_trace
//! ```

use bpntt_modmath::bitparallel::bp_modmul_traced;
use bpntt_sram::{BitOp, BitRow, Controller, Instruction, PredMode, RowAddr, ShiftDir, SramArray};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's worked example (Fig. 6) at the word-model level.
    println!(
        "== Fig. 6 trace: A=4, B=3, M=7, R=8 ==\n{}",
        bp_modmul_traced(4, 3, 7, 3)
    );

    // 2. The binary control words of Fig. 4(d): the instruction stream for
    //    one `c1,s1 = Sum&B, Sum^B` step plus the carry realignment.
    println!("\n== encoded control words ==");
    let program = [
        Instruction::Binary {
            dst: RowAddr(253),
            op: BitOp::And,
            src0: RowAddr(255),
            src1: RowAddr(0),
            dst2: Some((RowAddr(252), BitOp::Xor)),
            shift: None,
            pred: PredMode::Always,
        },
        Instruction::Shift {
            dst: RowAddr(254),
            src: RowAddr(254),
            dir: ShiftDir::Left,
            masked: false,
            pred: PredMode::Always,
        },
        Instruction::Check {
            src: RowAddr(255),
            bit: 0,
        },
    ];
    for i in &program {
        let w = i.encode();
        println!("  {w:#018x}  {i:?}");
        assert_eq!(Instruction::decode(w)?, *i, "round-trip");
    }

    // 3. Drive a real controller: two 8-bit tiles computing in lockstep.
    println!("\n== live controller: two 8-bit tiles ==");
    let mut ctl = Controller::new(SramArray::new(8, 16)?, 8)?;
    let mut a = BitRow::zero(16);
    a.set_tile_word(0, 8, 0b1100_1010);
    a.set_tile_word(1, 8, 0b0001_0111);
    let mut b = BitRow::zero(16);
    b.set_tile_word(0, 8, 0b1010_0110);
    b.set_tile_word(1, 8, 0b1111_0000);
    ctl.load_data_row(0, a);
    ctl.load_data_row(1, b);
    ctl.execute(&Instruction::Binary {
        dst: RowAddr(2),
        op: BitOp::And,
        src0: RowAddr(0),
        src1: RowAddr(1),
        dst2: Some((RowAddr(3), BitOp::Xor)),
        shift: None,
        pred: PredMode::Always,
    })?;
    for t in 0..2 {
        println!(
            "  tile {t}: AND = {:08b}, XOR = {:08b}",
            ctl.peek_row(2).tile_word(t, 8),
            ctl.peek_row(3).tile_word(t, 8)
        );
    }
    println!(
        "\n  stats after one dual-write activation:\n{}",
        ctl.stats()
    );
    Ok(())
}
