//! The request-queue service end to end: three client threads stream
//! mixed forward/polymul/custom-pipeline requests at the dispatcher,
//! which coalesces them into `(tenant, spec, mode)` waves over a 2-shard
//! engine; a second tenant with the same configuration shows the
//! cross-tenant program and pipeline caches.
//!
//! ```text
//! cargo run --release --example service_demo
//! ```

use std::time::Duration;

use bpntt_core::{BpNttConfig, NttService, PipelineRequest, PipelineSpec, ServiceOptions};
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::NttParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64-point Kyber-class workload with polymul capacity (2·64 + 6 rows).
    let params = NttParams::new(64, 7681)?;
    let cfg = BpNttConfig::new(134, 256, 14, params.clone())?;
    println!(
        "service over {}-point NTT mod {}: {} lanes/shard × 2 shards",
        params.n(),
        params.modulus(),
        cfg.layout().lanes()
    );

    let service = NttService::start(
        &cfg,
        ServiceOptions {
            shards: 2,
            max_queue: 256,
            coalesce_window: Duration::from_micros(500),
            ..ServiceOptions::default()
        },
    )?;

    // A second tenant with an identical (params, layout) installs the
    // Arc-shared compiled programs instead of recompiling.
    let tenant2 = service.add_tenant(&cfg)?;

    let n = params.n();
    let q = params.modulus();
    let mk_poly =
        |seed: u64| -> Vec<u64> { (0..n as u64).map(|j| (seed * 31 + j * 7) % q).collect() };

    std::thread::scope(|scope| {
        let service = &service;
        let params = &params;
        // Client 1: forward transforms on the default tenant.
        scope.spawn(move || {
            for s in 0..24u64 {
                let ticket = service.submit_forward(mk_poly(s)).expect("submit forward");
                let spectrum = ticket.wait().expect("forward result");
                assert_eq!(spectrum.len(), n);
            }
        });
        // Client 2: polymuls on the second tenant, verified against the
        // software schoolbook reference.
        scope.spawn(move || {
            for s in 0..12u64 {
                let a = mk_poly(1000 + s);
                let b = mk_poly(2000 + s);
                let ticket = service
                    .submit_polymul_as(tenant2, a.clone(), b.clone())
                    .expect("submit polymul");
                let got = ticket.wait().expect("polymul result");
                let expect = polymul_schoolbook(params, &a, &b).expect("schoolbook");
                assert_eq!(got, expect, "service polymul must match the reference");
            }
        });
        // Client 3: a custom op-graph — scale-and-roundtrip — through
        // submit_pipeline. Identical specs coalesce into shared waves.
        scope.spawn(move || {
            let spec = PipelineSpec::new()
                .input(0)
                .forward(0)
                .inverse(0)
                .scale_by(0, 3)
                .output(0);
            for s in 0..12u64 {
                let p = mk_poly(3000 + s);
                let ticket = service
                    .submit_pipeline(PipelineRequest::new(spec.clone(), vec![p.clone()]))
                    .expect("submit pipeline");
                let got = ticket.wait().expect("pipeline result");
                let expect: Vec<u64> = p.iter().map(|&c| c * 3 % q).collect();
                assert_eq!(got, expect, "scale-and-roundtrip must equal 3·p");
            }
        });
    });

    let metrics = service.shutdown();
    println!("\nall 48 requests verified; final service metrics:");
    println!("{}", metrics.to_json());
    assert_eq!(metrics.completed, 48);
    assert_eq!(metrics.failed, 0);
    assert!(
        metrics.program_cache_hits >= 1,
        "tenant 2 must reuse tenant 1's compiled programs"
    );
    assert!(
        metrics.pipeline_cache_entries >= 4,
        "canned specs plus the custom graph live in the pipeline cache"
    );
    Ok(())
}
