//! Homomorphic-encryption-scale NTT: 1024 points, BKZ.qsieve level-1
//! modulus, spanning multiple tiles of one array.
//!
//! ```text
//! cargo run --release --example he_batch_ntt
//! ```
//!
//! A 1024-point polynomial does not fit one tile (128 coefficients per
//! tile at this geometry), so the engine spreads it over 8 adjacent tiles
//! and pays explicit cross-tile shift traffic — the regime of the paper's
//! Fig. 8(b).

use bpntt_core::{BpNtt, BpNttConfig, PerfReport};
use bpntt_ntt::{NttParams, Polynomial};
use bpntt_sram::geometry::{AreaModel, FrequencyModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HE level 1: N = 1024, q = 40961 (16-bit) → 17-bit words for headroom.
    let params = NttParams::he_1024_16bit()?;
    let cfg = BpNttConfig::new(262, 256, 17, params.clone())?;
    let layout = cfg.layout().clone();
    println!(
        "HE batch NTT: {}-point mod {} — {} tiles/polynomial, {} lane(s), {} coefficients/tile",
        params.n(),
        params.modulus(),
        layout.tiles_per_poly(),
        layout.lanes(),
        layout.coeffs_per_tile()
    );
    let geometry = cfg.geometry();
    let lanes = layout.lanes();
    let polys: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|s| Polynomial::pseudo_random(&params, s + 5).into_coeffs())
        .collect();

    let mut acc = BpNtt::new(cfg)?;
    acc.load_batch(&polys)?;
    acc.reset_stats();
    acc.forward()?;
    let fwd_stats = *acc.stats();
    acc.inverse()?;
    let roundtrip = acc.read_batch(lanes)?;
    assert_eq!(
        roundtrip, polys,
        "forward then inverse must be the identity"
    );
    println!("forward + inverse round-trip verified\n");

    let report = PerfReport::from_stats(
        &fwd_stats,
        lanes,
        geometry,
        &AreaModel::cmos_45nm(),
        &FrequencyModel::cmos_45nm(),
    );
    println!("forward-only report:\n{report}");
    println!(
        "\ncross-tile shift traffic: {} one-bit moves ({} explicit shifts)",
        fwd_stats.counts.shift_moves(),
        fwd_stats.counts.shift
    );
    Ok(())
}
