//! Backend HAL quickstart: one compiled pipeline, two backends.
//!
//! ```text
//! cargo run --release --example backend_quickstart
//! ```
//!
//! Compiles a polynomial-multiplication pipeline once, installs the same
//! compiled artifact on both backends, and runs it on each:
//!
//! * [`BackendKind::Sim`] — the cost-accounted bit-accurate simulator;
//!   its [`BackendStats`] carries the full `Stats` snapshot (cycles,
//!   energy model) answering "what would the SRAM macro cost."
//! * [`BackendKind::Native`] — direct execution through the same fused
//!   word-engine executors with cost accounting compiled out; wall clock
//!   only, answering "how fast is this box."
//!
//! Every lane is checked bit-exactly against the Shoup software NTT
//! reference, and the two backends must agree row for row.

use bpntt_core::{new_backend, BackendKind, BpNttConfig, ExecMode, PipelineSpec};
use bpntt_ntt::polymul::polymul_ntt_with;
use bpntt_ntt::{NttParams, Polynomial, TwiddleTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Dilithium-class parameters; polymul needs two operand slots
    // (2·256 + 6 rows).
    let params = NttParams::new(256, 8_380_417)?;
    let cfg = BpNttConfig::new(518, 256, 24, params.clone())?;
    let lanes = cfg.layout().lanes();
    let spec = PipelineSpec::polymul();

    let a: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|l| Polynomial::pseudo_random(&params, 2 * l + 1).into_coeffs())
        .collect();
    let b: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|l| Polynomial::pseudo_random(&params, 2 * l + 2).into_coeffs())
        .collect();

    // Compile once on the simulator, install the identical artifact on
    // the native backend — compiled pipelines are backend-independent.
    let mut sim = new_backend(BackendKind::Sim, &cfg)?;
    let plan = sim.compile(&spec)?;
    let mut native = new_backend(BackendKind::Native, &cfg)?;
    native.install_pipeline(&plan);

    let (sim_rows, sim_cost) = sim.execute(&plan, ExecMode::Replay, &[&a, &b])?;
    let (nat_rows, nat_cost) = native.execute(&plan, ExecMode::Replay, &[&a, &b])?;
    assert_eq!(sim_rows, nat_rows, "backends diverged");

    // Both agree with the software reference, lane by lane.
    let twiddles = TwiddleTable::new(&params);
    for lane in 0..lanes {
        let expect = polymul_ntt_with(&params, &twiddles, &a[lane], &b[lane])?;
        assert_eq!(
            nat_rows[lane], expect,
            "lane {lane} diverged from software NTT"
        );
    }
    println!(
        "{lanes} lanes × {}-pt polymul, both backends reference-exact\n",
        params.n()
    );

    let stats = sim_cost.sim.expect("sim backend always reports Stats");
    println!(
        "sim backend:    {:>8.3} ms wall | {} modeled cycles, {:.1} nJ ({} instrs)",
        sim_cost.wall_secs * 1e3,
        stats.cycles,
        stats.energy_pj / 1e3,
        stats.counts.total(),
    );
    println!(
        "native backend: {:>8.3} ms wall | cost accounting compiled out (sim stats: {:?})",
        nat_cost.wall_secs * 1e3,
        nat_cost.sim,
    );
    println!(
        "\nnative is {:.2}x the costed simulator on this box",
        sim_cost.wall_secs / nat_cost.wall_secs,
    );
    Ok(())
}
