//! The pipeline op-graph API, end to end: canned specs, custom graphs,
//! NTT-domain caching with a resident spectrum, and the three execution
//! modes producing identical results.
//!
//! ```text
//! cargo run --release --example pipeline_graphs
//! ```
//!
//! The paper's Table 3 scores *polynomial multiplication* — forward,
//! forward, pointwise, inverse — end to end, not isolated transforms.
//! `PipelineSpec` makes that whole workload (and every variant HE/PQC
//! clients actually run) a single compiled, cacheable object: operands
//! load once, the graph executes in-SRAM, results read once.

use bpntt_core::{BpNtt, BpNttConfig, ExecMode, PipelineSpec};
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::NttParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64-point Kyber-class parameters; 2·64 + 6 rows hosts two operand
    // slots on one tile.
    let params = NttParams::new(64, 7681)?;
    let cfg = BpNttConfig::new(134, 256, 14, params.clone())?;
    let lanes = cfg.layout().lanes();
    println!(
        "pipelines over Z_{}[x]/(x^{}+1), {} lanes",
        params.modulus(),
        params.n(),
        lanes
    );
    let mk_batch = |seed: u64, count: usize| -> Vec<Vec<u64>> {
        (0..count as u64)
            .map(|l| {
                (0..params.n() as u64)
                    .map(|j| ((seed + l) * 131 + j * 7) % params.modulus())
                    .collect()
            })
            .collect()
    };

    // 1. The canned negacyclic product, in all three execution modes.
    let a = mk_batch(10, 3);
    let b = mk_batch(20, 3);
    let spec = PipelineSpec::polymul();
    let mut acc = BpNtt::new(cfg.clone())?;
    let plan = acc.compile_pipeline(&spec)?;
    println!(
        "polymul spec: {} ops -> {} compiled segments, {} fused superops",
        spec.ops().len(),
        plan.segments(),
        plan.fused_ops()
    );
    let mut outs = Vec::new();
    for mode in ExecMode::ALL {
        outs.push(acc.run_pipeline(&spec, mode, &[&a, &b])?);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
    for lane in 0..3 {
        let expect = polymul_schoolbook(&params, &a[lane], &b[lane])?;
        assert_eq!(outs[0][lane], expect, "lane {lane}");
    }
    println!("  replay ≡ fused-emit ≡ generic ≡ schoolbook on 3 lanes");

    // 2. NTT-domain caching: park a reused operand's spectrum in slot 1
    // once (no output — the array keeps it), then stream products
    // against it. Each product skips one operand reload and both
    // forward transforms of the naive per-call shape.
    let kernel = mk_batch(77, lanes);
    let cache_spec = PipelineSpec::new().input(1).forward(1);
    let mac_spec = PipelineSpec::new()
        .input(0)
        .forward(0)
        .pointwise(0, 1)
        .inverse(0)
        .output(0);
    let mut resident = BpNtt::new(cfg.clone())?;
    resident.run_pipeline(&cache_spec, ExecMode::Replay, &[&kernel])?;
    for round in 0..3u64 {
        let x = mk_batch(100 + round, lanes);
        let got = resident.run_pipeline(&mac_spec, ExecMode::Replay, &[&x])?;
        for lane in 0..lanes {
            let expect = polymul_schoolbook(&params, &x[lane], &kernel[lane])?;
            assert_eq!(got[lane], expect, "round {round} lane {lane}");
        }
    }
    println!("  resident-spectrum MAC: 3 rounds × {lanes} lanes verified");

    // 3. A custom graph with debt folding: (a ⊛ b) scaled by 5. The
    // pointwise step's R⁻¹ debt folds into the *next* constant multiply
    // on the slot — here the inverse's N⁻¹ scale (which becomes n⁻¹·R²)
    // — so the trailing ScaleBy compiles as a plain ×5 fifth segment
    // and no extra compensation segment is ever appended.
    let scaled_spec = PipelineSpec::new()
        .input(0)
        .input(1)
        .forward(0)
        .forward(1)
        .pointwise(0, 1)
        .inverse(0)
        .scale_by(0, 5)
        .output(0);
    let mut custom = BpNtt::new(cfg)?;
    let got = custom.run_pipeline(&scaled_spec, ExecMode::Replay, &[&a, &b])?;
    for lane in 0..3 {
        let prod = polymul_schoolbook(&params, &a[lane], &b[lane])?;
        let expect: Vec<u64> = prod.iter().map(|&c| c * 5 % params.modulus()).collect();
        assert_eq!(got[lane], expect, "lane {lane}");
    }
    println!("  custom scale-after-product graph verified (5 segments)");
    println!(
        "\nsimulator stats of the custom engine:\n{}",
        custom.stats()
    );
    Ok(())
}
