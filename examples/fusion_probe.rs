//! Prints the replay compiler's fusion coverage for the benchmark
//! configurations: how much of the compiled stream runs as superops vs
//! generic instructions, the word-engine fast-path coverage counters
//! (register-resident chains/loops vs per-step fallbacks), and a
//! force_scalar A/B of replay and fused-emission wall-clock.

use std::time::Instant;

use bpntt_core::{BpNtt, BpNttConfig, ExecMode};
use bpntt_ntt::NttParams;

fn main() {
    for cols in [48usize, 256, 512, 1024] {
        let cfg = BpNttConfig::new(262, cols, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap();
        let lanes = cfg.layout().lanes();
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys: Vec<Vec<u64>> = (0..lanes)
            .map(|s| {
                (0..256)
                    .map(|j| ((s * 131 + j * 7) as u64) % 8_380_417)
                    .collect()
            })
            .collect();
        acc.load_batch(&polys).unwrap();
        let prog = acc.compiled_forward().unwrap();
        println!(
            "cols={cols}: static_len={} fused_ops={} fused_chains={} fused_epilogues={} fast_path={:?}",
            prog.static_len(),
            prog.fused_ops(),
            prog.fused_chains(),
            prog.fused_epilogues(),
            prog.fast_path_kind(),
        );
        // Fast-path coverage: which execution strategy actually ran, per
        // path. "Zero resident hits" here is the canary for a silently
        // degraded fast path.
        acc.forward().unwrap();
        acc.reset_stats();
        acc.forward().unwrap();
        println!("  replay coverage:     {}", acc.fastpath_stats());
        acc.reset_stats();
        acc.forward_mode(ExecMode::FusedEmit).unwrap();
        println!("  fused-emit coverage: {}", acc.fastpath_stats());
        // In-process A/B: same program, toggled kernel implementation,
        // interleaved across the three execution paths to cancel
        // machine drift.
        for (name, scalar) in [("simd", false), ("scalar", true)] {
            bpntt_sram::force_scalar(scalar);
            acc.forward().unwrap();
            let mut best_r = f64::MAX;
            let mut best_f = f64::MAX;
            let mut best_e = f64::MAX;
            for _ in 0..10 {
                let t = Instant::now();
                for _ in 0..3 {
                    acc.forward().unwrap();
                }
                best_r = best_r.min(t.elapsed().as_secs_f64() / 3.0);
                let t = Instant::now();
                for _ in 0..3 {
                    acc.forward_mode(ExecMode::FusedEmit).unwrap();
                }
                best_f = best_f.min(t.elapsed().as_secs_f64() / 3.0);
                let t = Instant::now();
                for _ in 0..3 {
                    acc.forward_mode(ExecMode::Generic).unwrap();
                }
                best_e = best_e.min(t.elapsed().as_secs_f64() / 3.0);
            }
            println!(
                "  [{name}] generic emit = {:.3} ms, fused emit = {:.3} ms, replay = {:.3} ms, replay speedup = {:.2}x",
                best_e * 1e3,
                best_f * 1e3,
                best_r * 1e3,
                best_e / best_r
            );
        }
        bpntt_sram::force_scalar(false);
    }
}
