//! Big-modulus polynomial multiplication via RNS/CRT limb decomposition.
//!
//! ```text
//! cargo run --release --example rns_polymul
//! ```
//!
//! A single BP-NTT tile computes mod one word-sized prime `q`. HE-style
//! workloads need coefficient moduli of hundreds of bits — far past any
//! tile word. The residue number system bridges the gap: pick `L`
//! NTT-friendly primes, work mod each independently (one engine per
//! limb, fanned out concurrently), and reconstruct the big-integer
//! answer with the Chinese Remainder Theorem. This example walks the
//! whole path twice — through the raw [`RnsContext`] engine layer, then
//! through the [`NttService`] multi-tenant front-end — and checks both
//! against a hand-rolled bigint schoolbook product mod `Q`.

use std::sync::Arc;

use bpntt_core::{
    BackendKind, BigUint, ExecMode, NttService, PipelineSpec, RnsBasis, RnsContext, RnsRequest,
    ServiceOptions,
};
use bpntt_modmath::primes::find_ntt_primes;
use bpntt_rns::reference::negacyclic_polymul_basis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- build a basis: three ~30-bit NTT-friendly primes for N = 256 ----
    // Q = q0·q1·q2 is ~90 bits — no single tile word could hold it.
    let n: usize = 256;
    let primes = find_ntt_primes(30, n as u64, 3)?;
    let basis = Arc::new(RnsBasis::new(n, &primes)?);
    println!(
        "basis: {:?} → Q is {} bits ({})",
        basis.primes(),
        basis.modulus_bits(),
        basis.modulus()
    );

    // Deterministic operands with coefficients over the full 0..Q range.
    let mut x = 0x5EEDu64;
    let mut big_poly = || -> Vec<BigUint> {
        (0..n)
            .map(|_| {
                let mut limbs = Vec::with_capacity(2);
                for _ in 0..2 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    limbs.push(x);
                }
                BigUint::from_limbs(limbs).rem(basis.modulus())
            })
            .collect()
    };
    let a = big_poly();
    let b = big_poly();
    let expect = negacyclic_polymul_basis(&a, &b, &basis)?;

    // ---- engine layer: one sharded engine per limb, fanned out -----------
    // Polymul holds both operands resident: 2N + 6 rows. 31-bit words on
    // a 62-column slice give 2 lanes per limb engine.
    let mut ctx = RnsContext::new(
        Arc::clone(&basis),
        2 * n + 6,
        62,
        31,
        basis.limbs(),
        BackendKind::Native,
    )?;
    let product = ctx.run_rns(
        &PipelineSpec::polymul(),
        ExecMode::Replay,
        &[a.clone(), b.clone()],
    )?;
    assert_eq!(product, expect, "CRT reconstruction diverged");
    let wave = ctx.last_wave();
    println!(
        "engine fan-out: {} of {} shards busy in one wave (occupancy {:.2}), wall {:.2} ms",
        wave.participating,
        wave.capacity,
        wave.occupancy,
        wave.wall_secs * 1e3
    );
    println!("  c[0] = {}", product[0]);

    // The sequential baseline computes the same answer with one limb's
    // shards busy at a time — the gap is what the fan-out recovers.
    let slots_a = vec![a.clone()];
    let slots_b = vec![b.clone()];
    let sequential = ctx.run_limbs_sequential(
        &PipelineSpec::polymul(),
        ExecMode::Replay,
        &[&slots_a, &slots_b],
    )?;
    assert_eq!(sequential[0], expect);
    println!(
        "sequential baseline: occupancy {:.2} — identical answer, idle budget",
        ctx.last_wave().occupancy
    );

    // ---- service layer: an RNS tenant group over the same basis ----------
    let service = NttService::start(
        &bpntt_core::BpNttConfig::paper_256pt_16bit()?,
        ServiceOptions {
            backend: BackendKind::Native,
            ..ServiceOptions::default()
        },
    )?;
    let handle = service.add_rns_tenant(2 * n + 6, 62, 31, &basis)?;
    let result = service
        .submit_rns(&handle, RnsRequest::polymul(a, b))?
        .wait()?;
    assert_eq!(result.coefficients, expect, "service path diverged");
    let m = service.shutdown();
    println!(
        "service: {} RNS request ({} limbs) through tenants {:?}, fan-out occupancy {:.2}",
        m.rns_requests,
        m.rns_limbs,
        handle.limb_tenants(),
        m.rns_fanout_occupancy
    );
    println!("all three paths agree with the bigint reference");
    Ok(())
}
