//! The wire front-end end to end: a [`NetServer`] serving a 2-shard
//! service over loopback TCP, with two tenants submitting length-prefixed
//! frames through [`NetClient`] — forward transforms and polymuls, each
//! verified against the software reference — then the per-tenant
//! Prometheus export fetched over the same wire.
//!
//! ```text
//! cargo run --release --example net_quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use bpntt_core::{BpNttConfig, ExecMode, NttService, PipelineSpec, ServiceOptions};
use bpntt_net::{NetClient, NetOptions, NetServer, SubmitRequest};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{NttParams, TwiddleTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64-point Kyber-class workload with polymul capacity (2·64 + 6 rows).
    let params = NttParams::new(64, 7681)?;
    let cfg = BpNttConfig::new(134, 256, 14, params.clone())?;
    let service = Arc::new(NttService::start(
        &cfg,
        ServiceOptions {
            shards: 2,
            max_queue: 64,
            coalesce_window: Duration::from_micros(500),
            ..ServiceOptions::default()
        },
    )?);
    let tenant2 = service.add_tenant(&cfg)?;

    // Port 0: the OS picks a free port; local_addr() reports it.
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetOptions::default())?;
    println!(
        "serving {}-point NTT on {}",
        params.n(),
        server.local_addr()
    );

    let n = params.n();
    let q = params.modulus();
    let mk_poly =
        |seed: u64| -> Vec<u64> { (0..n as u64).map(|j| (seed * 31 + j * 7) % q).collect() };
    let twiddles = TwiddleTable::new(&params);

    std::thread::scope(|scope| {
        // Client 1: forward transforms on the default tenant.
        let addr = server.local_addr();
        let (params, twiddles) = (&params, &twiddles);
        scope.spawn(move || {
            let mut client = NetClient::connect(addr).expect("connect");
            for s in 0..16u64 {
                let poly = mk_poly(s);
                let got = client
                    .submit(SubmitRequest {
                        tenant: None,
                        mode: ExecMode::Replay,
                        deadline_ms: 0,
                        spec: PipelineSpec::forward_ntt(),
                        inputs: vec![poly.clone()],
                    })
                    .expect("forward over wire");
                let mut expect = poly;
                ntt_in_place(params, twiddles, &mut expect).expect("reference");
                assert_eq!(got, expect, "wire forward must match the reference");
            }
        });
        // Client 2: polymuls as tenant 2, against the schoolbook reference.
        scope.spawn(move || {
            let mut client = NetClient::connect(addr).expect("connect");
            for s in 0..8u64 {
                let (a, b) = (mk_poly(1000 + s), mk_poly(2000 + s));
                let got = client
                    .submit(SubmitRequest {
                        tenant: Some(tenant2.raw()),
                        mode: ExecMode::Replay,
                        deadline_ms: 0,
                        spec: PipelineSpec::polymul(),
                        inputs: vec![a.clone(), b.clone()],
                    })
                    .expect("polymul over wire");
                let expect = polymul_schoolbook(params, &a, &b).expect("schoolbook");
                assert_eq!(got, expect, "wire polymul must match the reference");
            }
        });
    });

    // Per-tenant accounting is visible over the same protocol.
    let mut client = NetClient::connect(server.local_addr())?;
    let prom = client.metrics_prometheus()?;
    let completed: Vec<&str> = prom
        .lines()
        .filter(|l| l.starts_with("bpntt_tenant_completed_total"))
        .collect();
    println!("\nper-tenant completions:\n{}", completed.join("\n"));
    drop(client);

    server.shutdown();
    let metrics = Arc::try_unwrap(service)
        .map_err(|_| "service still shared")?
        .shutdown();
    assert_eq!(metrics.completed, 24);
    assert_eq!(metrics.failed, 0);
    println!("\nall 24 wire requests verified; service drained clean");
    Ok(())
}
