//! Design-space exploration: throughput-per-area and throughput-per-power
//! across word widths and array geometries — the flexibility knob the
//! paper contrasts against fixed-function accelerators.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use bpntt_core::{BpNtt, BpNttConfig, PerfReport};
use bpntt_ntt::{NttParams, Polynomial};
use bpntt_sram::geometry::{AreaModel, FrequencyModel};

fn measure(rows: usize, cols: usize, bw: usize, params: &NttParams) -> Option<PerfReport> {
    let cfg = BpNttConfig::new(rows, cols, bw, params.clone()).ok()?;
    let geometry = cfg.geometry();
    let lanes = cfg.layout().lanes();
    let mut acc = BpNtt::new(cfg).ok()?;
    let polys: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|s| Polynomial::pseudo_random(params, s + 3).into_coeffs())
        .collect();
    acc.load_batch(&polys).ok()?;
    acc.reset_stats();
    acc.forward().ok()?;
    Some(PerfReport::from_stats(
        acc.stats(),
        lanes,
        geometry,
        &AreaModel::cmos_45nm(),
        &FrequencyModel::cmos_45nm(),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("design space for the 256-point NTT (q chosen per width):\n");
    println!(
        "{:<12} {:>6} {:>7} {:>12} {:>12} {:>14} {:>12}",
        "array", "bits", "lanes", "latency(us)", "tput(k/s)", "TA(k/s/mm2)", "TP(k/mJ)"
    );
    let q14 = NttParams::new(256, 7681)?; // 13-bit prime → 14-bit words
    let q16 = NttParams::new(256, 12_289)?; // 14-bit prime → 16-bit words
    let cases: [(usize, usize, usize, &NttParams); 6] = [
        (262, 256, 14, &q14),
        (262, 256, 16, &q16),
        (262, 256, 32, &q16),
        (128, 128, 16, &q16),
        (512, 512, 16, &q16),
        (1024, 256, 16, &q16),
    ];
    for (rows, cols, bw, params) in cases {
        match measure(rows, cols, bw, params) {
            Some(r) => println!(
                "{:<12} {:>6} {:>7} {:>12.2} {:>12.1} {:>14.1} {:>12.1}",
                format!("{rows}x{cols}"),
                bw,
                r.batch,
                r.latency_us(),
                r.throughput_kntt_s(),
                r.tput_per_area,
                r.tput_per_power
            ),
            None => {
                println!(
                    "{:<12} {:>6}  (configuration not feasible)",
                    format!("{rows}x{cols}"),
                    bw
                );
            }
        }
    }
    println!("\nobservations: wider words shrink the lane count (throughput) at fixed");
    println!("area; larger arrays buy lanes but clock slower and cost area — the");
    println!("trade-off surface behind the paper's Fig. 8 and Table I.");
    Ok(())
}
