//! Property tests for the backend HAL: the native direct-execution
//! backend must produce rows **bit-identical** to the cost-accounted
//! simulator backend for the same compiled pipelines — across the
//! Kyber-class (7681), Dilithium (8 380 417), and HE-level
//! (1 073 738 753) parameter sets, under **all three** [`ExecMode`]s,
//! for both canned graphs (polymul and the spectral NTT-domain-cached
//! product). The native backend's `Stats` must stay frozen at zero (no
//! cost accounting ran), its outputs must match the software reference,
//! and the service layer must be able to run tenants on both backends in
//! one process — including the full detect→retry→quarantine→degrade
//! recovery ladder under injected faults, exercised per backend.

use proptest::prelude::*;

use bpntt_core::{
    new_backend, BackendKind, BpNttConfig, BpNttError, ExecMode, FaultPlan, NttService,
    PipelineSpec, RecoveryOptions, ServiceOptions, ShardedBpNtt, VerifyPolicy,
};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{NttParams, TwiddleTable};

/// The three parameter sets on polymul-capable geometries (two operand
/// slots: `2N + 6 ≤ rows`, single tile) — the same sweep the pipeline
/// equivalence proptests use.
fn config(idx: usize) -> BpNttConfig {
    match idx {
        // Kyber-class prime, 14-bit tiles.
        0 => BpNttConfig::new(140, 128, 14, NttParams::new(64, 7681).unwrap()).unwrap(),
        // Dilithium prime, 24-bit tiles.
        1 => BpNttConfig::new(140, 128, 24, NttParams::new(64, 8_380_417).unwrap()).unwrap(),
        // HE RNS limb prime, 31-bit tiles.
        _ => BpNttConfig::new(140, 128, 31, NttParams::new(64, 1_073_738_753).unwrap()).unwrap(),
    }
}

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

/// Runs one spec on both backends in every `ExecMode` — the *same*
/// compiled pipeline crosses the seam (compiled on sim, installed on
/// native) — and asserts bit-identical rows, a frozen native `Stats`,
/// and agreement with the software reference outputs.
fn assert_backends_equivalent(cfg: &BpNttConfig, spec: &PipelineSpec, seed: u64) {
    let lanes = cfg.layout().lanes();
    let batch = 1 + (seed as usize) % lanes;
    let inputs: Vec<Vec<Vec<u64>>> = (0..spec.input_slots().len())
        .map(|s| {
            pseudo_batch(
                cfg,
                batch,
                seed.wrapping_add(s as u64 * 0x9E37_79B9_7F4A_7C15),
            )
        })
        .collect();
    let slots: Vec<&[Vec<u64>]> = inputs.iter().map(Vec::as_slice).collect();

    let mut sim = new_backend(BackendKind::Sim, cfg).unwrap();
    let pipe = sim.compile(spec).unwrap();
    let mut native = new_backend(BackendKind::Native, cfg).unwrap();
    native.install_pipeline(&pipe);

    for mode in ExecMode::ALL {
        let (sim_rows, sim_cost) = sim.execute(&pipe, mode, &slots).unwrap();
        let (native_rows, native_cost) = native.execute(&pipe, mode, &slots).unwrap();
        assert_eq!(native_rows, sim_rows, "{mode:?} seed {seed}");
        // The simulator accounted; the native backend never does.
        assert!(
            sim_cost.sim.is_some_and(|s| s.cycles > 0),
            "{mode:?} sim accounting ran"
        );
        assert_eq!(native_cost.sim, None, "{mode:?}");
        assert_eq!(
            native.sim_stats(),
            None,
            "{mode:?}: native backends never expose Stats"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// native ≡ sim, polymul graph, Kyber-class set, all modes.
    #[test]
    fn kyber_native_matches_sim_polymul(seed in any::<u64>()) {
        assert_backends_equivalent(&config(0), &PipelineSpec::polymul(), seed);
    }

    /// native ≡ sim, polymul graph, Dilithium set, all modes.
    #[test]
    fn dilithium_native_matches_sim_polymul(seed in any::<u64>()) {
        assert_backends_equivalent(&config(1), &PipelineSpec::polymul(), seed);
    }

    /// native ≡ sim, polymul graph, HE-level set, all modes.
    #[test]
    fn he_level_native_matches_sim_polymul(seed in any::<u64>()) {
        assert_backends_equivalent(&config(2), &PipelineSpec::polymul(), seed);
    }

    /// native ≡ sim, spectral (NTT-domain-cached) graph, all sets, all
    /// modes.
    #[test]
    fn spectral_native_matches_sim(seed in any::<u64>(), idx in 0usize..3) {
        assert_backends_equivalent(&config(idx), &PipelineSpec::polymul_spectral(), seed);
    }
}

/// A native sharded wave agrees with a sim sharded wave on the same
/// batch, matches the software reference, and reports all-zero simulator
/// stats but nonzero wall clock.
#[test]
fn native_sharded_wave_matches_sim_wave() {
    let cfg = config(1);
    let params = cfg.params().clone();
    let lanes = cfg.layout().lanes();
    let batch = 2 * lanes + 1; // three chunks, last partial
    let a = pseudo_batch(&cfg, batch, 210);
    let b = pseudo_batch(&cfg, batch, 211);

    let mut sim = ShardedBpNtt::new(&cfg, 3).unwrap();
    assert_eq!(sim.backend_kind(), BackendKind::Sim);
    let sim_out = sim.polymul_batch(&a, &b).unwrap();

    let mut native = ShardedBpNtt::with_backend(&cfg, 3, BackendKind::Native).unwrap();
    assert_eq!(native.backend_kind(), BackendKind::Native);
    let native_out = native.polymul_batch(&a, &b).unwrap();

    assert_eq!(native_out, sim_out);
    for (i, out) in native_out.iter().enumerate() {
        let expect = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
        assert_eq!(out, &expect, "pair {i}");
    }
    assert!(sim.stats().cycles > 0, "sim shards account");
    let ns = native.stats();
    assert_eq!(ns.cycles, 0, "native shards never account");
    assert_eq!(ns.counts.total(), 0);
    assert_eq!(ns.energy_pj, 0.0);
    assert!(
        native.last_wave_shard_secs().iter().all(|&s| s > 0.0),
        "wall clock is the native metric"
    );
}

/// One service process, two tenants of the *same configuration* on
/// *different backends*: both answer correctly, and the compiled-artifact
/// cache keys them separately (registering the second kind is a cache
/// miss — two entries, no cross-kind hit).
#[test]
fn service_runs_mixed_backend_tenants_with_backend_keyed_cache() {
    let cfg = config(0);
    let params = cfg.params().clone();
    let t = TwiddleTable::new(&params);
    let service = NttService::start(&cfg, ServiceOptions::default()).unwrap();
    let sim_tenant = service.default_tenant();
    let native_tenant = service
        .add_tenant_with_backend(&cfg, BackendKind::Native)
        .unwrap();
    // Same (params, layout), different kind → keyed apart: the native
    // registration must NOT hit the sim tenant's cache entry.
    let m = service.metrics();
    assert_eq!(
        m.program_cache_entries, 2,
        "one program-cache entry per backend kind"
    );
    assert_eq!(m.program_cache_hits, 0, "no cross-backend cache hit");
    // A *third* tenant on the native backend is a hit on the native entry.
    service
        .add_tenant_with_backend(&cfg, BackendKind::Native)
        .unwrap();
    let m = service.metrics();
    assert_eq!(m.program_cache_entries, 2);
    assert_eq!(m.program_cache_hits, 1, "same-kind registration hits");

    let poly = pseudo_batch(&cfg, 1, 300).remove(0);
    let mut expect = poly.clone();
    ntt_in_place(&params, &t, &mut expect).unwrap();
    let sim_got = service
        .submit_forward_as(sim_tenant, poly.clone())
        .unwrap()
        .wait()
        .unwrap();
    let native_got = service
        .submit_forward_as(native_tenant, poly)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(sim_got, expect);
    assert_eq!(native_got, expect, "native tenant answers bit-identically");
    let _ = service.shutdown();
}

/// The PR 6 recovery ladder under injected faults, exercised on one
/// backend kind end to end through the service: a persistent dead row
/// corrupts every chunk, verification detects it, retries burn out,
/// shards quarantine, and the software fallback still returns the
/// correct answer for every polynomial.
fn fault_drill(kind: BackendKind) {
    let cfg = config(0);
    let params = cfg.params().clone();
    let t = TwiddleTable::new(&params);
    let service = NttService::start(
        &cfg,
        ServiceOptions {
            shards: 2,
            verify: VerifyPolicy::Full,
            retry_budget: 1,
            fault_plan: Some(FaultPlan::seeded(17).dead_row(2)),
            backend: kind,
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    let polys = pseudo_batch(&cfg, 6, 400 + kind as u64);
    let tickets: Vec<_> = polys
        .iter()
        .map(|p| service.submit_forward(p.clone()).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().unwrap();
        let mut expect = polys[i].clone();
        ntt_in_place(&params, &t, &mut expect).unwrap();
        assert_eq!(
            got, expect,
            "{kind}: poly {i} must be correct via the ladder"
        );
    }
    let m = service.shutdown();
    assert!(m.faults_detected > 0, "{kind}: detection fired");
    assert!(m.fallback_polys > 0, "{kind}: degrade rung answered");
    assert!(m.quarantined_shards > 0, "{kind}: quarantine engaged");
}

/// Recovery ladder drill on the simulator backend.
#[test]
fn recovery_ladder_drill_on_sim_backend() {
    fault_drill(BackendKind::Sim);
}

/// Recovery ladder drill on the native backend — fault injection fires
/// at the same instruction clock with cost accounting compiled out.
#[test]
fn recovery_ladder_drill_on_native_backend() {
    fault_drill(BackendKind::Native);
}

/// The native backend honors the retry rung without the full service: a
/// transient fault consumed by the failed attempt lets the same-shard
/// retry succeed, identically to the simulator.
#[test]
fn native_sharded_retry_consumes_transient() {
    for kind in BackendKind::ALL {
        let cfg = config(0);
        let params = cfg.params().clone();
        let t = TwiddleTable::new(&params);
        let mut sharded = ShardedBpNtt::with_backend(&cfg, 2, kind).unwrap();
        sharded.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 2,
            software_fallback: true,
        });
        sharded.install_fault_plan(&FaultPlan::seeded(23).transient_at(500, 1, 3));
        let batch = pseudo_batch(&cfg, 5, 510);
        let got = sharded.forward_batch(&batch).unwrap();
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "{kind}: poly {i}");
        }
        let r = sharded.recovery_totals();
        assert!(
            r.faults_detected > 0 && r.retries > 0,
            "{kind}: the transient was detected and retried (report: {r:?})"
        );
    }
}

/// Cross-backend pipeline installs reject mismatched configurations the
/// same way same-backend installs do — the fingerprint check is
/// backend-independent.
#[test]
fn native_rejects_foreign_fingerprints() {
    let mut sim = new_backend(BackendKind::Sim, &config(0)).unwrap();
    let pipe = sim.compile(&PipelineSpec::forward_ntt()).unwrap();
    let mut native = new_backend(BackendKind::Native, &config(1)).unwrap();
    let batch = pseudo_batch(&config(0), 1, 600);
    let err = native
        .execute(&pipe, ExecMode::Replay, &[&batch])
        .unwrap_err();
    assert!(matches!(err, BpNttError::InvalidPipeline { .. }));
}
