//! Property tests for the pipeline op-graph API: `run_pipeline` with the
//! canned polymul spec must be *indistinguishable* from the retained
//! pre-pipeline `polymul` implementation — bit-identical array rows (all
//! of them, scratch and constants included) and bit-identical
//! [`Stats`](bpntt_sram::Stats) (cycles, counts, row I/O, and the
//! floating-point energy total in its accumulation order) — under **all
//! three** [`ExecMode`]s, across the Kyber-class (7681), Dilithium
//! (8 380 417), and HE-level (1 073 738 753) parameter sets. A sharded
//! wave running a compiled pipeline must agree with a single array
//! processing the same chunks sequentially, and the spectral
//! (NTT-domain-cached) graphs must match the software reference.

use proptest::prelude::*;

use bpntt_core::{BpNtt, BpNttConfig, BpNttError, ExecMode, PipelineSpec, ShardedBpNtt};
use bpntt_modmath::zq::mul_mod;
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{NttParams, TwiddleTable};

/// The three parameter sets, on polymul-capable geometries
/// (`2N + 6 ≤ rows`, single tile). 64 points keeps the three-mode ×
/// three-set sweep fast while exercising the same kernels as the
/// 256-point paper geometry; `full_dilithium_config` covers that one.
fn config(idx: usize) -> BpNttConfig {
    match idx {
        // Kyber-class prime, 14-bit tiles.
        0 => BpNttConfig::new(140, 128, 14, NttParams::new(64, 7681).unwrap()).unwrap(),
        // Dilithium prime, 24-bit tiles.
        1 => BpNttConfig::new(140, 128, 24, NttParams::new(64, 8_380_417).unwrap()).unwrap(),
        // HE RNS limb prime, 31-bit tiles.
        _ => BpNttConfig::new(140, 128, 31, NttParams::new(64, 1_073_738_753).unwrap()).unwrap(),
    }
}

/// The paper's 256-point Dilithium geometry with polymul capacity
/// (2·256 + 6 = 518 rows).
fn full_dilithium_config() -> BpNttConfig {
    BpNttConfig::new(518, 256, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap()
}

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

/// Runs the canned polymul pipeline in every `ExecMode` against the
/// retained legacy implementation on identical data and asserts
/// indistinguishability: every physical row and the full `Stats`
/// (including the f64 energy accumulator bits).
fn assert_pipeline_equivalent(cfg: &BpNttConfig, seed: u64) {
    let lanes = cfg.layout().lanes();
    let batch = 1 + (seed as usize) % lanes;
    let a = pseudo_batch(cfg, batch, seed);
    let b = pseudo_batch(cfg, batch, seed ^ 0x9E37_79B9_7F4A_7C15);

    let mut legacy = BpNtt::new(cfg.clone()).unwrap();
    legacy.reset_stats();
    let legacy_out = legacy.polymul_legacy(&a, &b).unwrap();
    let ls = *legacy.stats();

    for mode in ExecMode::ALL {
        let mut piped = BpNtt::new(cfg.clone()).unwrap();
        piped.reset_stats();
        let piped_out = piped
            .run_pipeline(&PipelineSpec::polymul(), mode, &[&a, &b])
            .unwrap();
        assert_eq!(piped_out, legacy_out, "{mode:?} seed {seed}");
        for r in 0..cfg.rows() {
            assert_eq!(
                piped.peek_row(r),
                legacy.peek_row(r),
                "row {r} diverged ({mode:?}, seed {seed})"
            );
        }
        let ps = *piped.stats();
        assert_eq!(ps.cycles, ls.cycles, "{mode:?} cycles");
        assert_eq!(ps.counts, ls.counts, "{mode:?} counts");
        assert_eq!(ps.row_loads, ls.row_loads, "{mode:?} row loads");
        assert_eq!(ps.row_stores, ls.row_stores, "{mode:?} row stores");
        assert_eq!(
            ps.energy_pj.to_bits(),
            ls.energy_pj.to_bits(),
            "{mode:?} energy accumulator"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// polymul pipeline ≡ legacy polymul, Kyber-class set, all modes.
    #[test]
    fn kyber_polymul_pipeline_equivalent(seed in any::<u64>()) {
        assert_pipeline_equivalent(&config(0), seed);
    }

    /// polymul pipeline ≡ legacy polymul, Dilithium set, all modes.
    #[test]
    fn dilithium_polymul_pipeline_equivalent(seed in any::<u64>()) {
        assert_pipeline_equivalent(&config(1), seed);
    }

    /// polymul pipeline ≡ legacy polymul, HE-level set, all modes.
    #[test]
    fn he_level_polymul_pipeline_equivalent(seed in any::<u64>()) {
        assert_pipeline_equivalent(&config(2), seed);
    }
}

/// The paper's full 256-point Dilithium geometry: one non-prop run of
/// the three-mode equivalence (kept out of the proptest loop for time).
#[test]
fn full_geometry_polymul_pipeline_equivalent() {
    assert_pipeline_equivalent(&full_dilithium_config(), 42);
}

/// A sharded wave executing the compiled pipeline agrees with a single
/// array processing the same chunks sequentially (same programs, same
/// per-chunk data) — and with the software reference.
#[test]
fn sharded_wave_pipeline_matches_single_array() {
    let cfg = config(1);
    let params = cfg.params().clone();
    let lanes = cfg.layout().lanes();
    let batch = 2 * lanes + 1; // three chunks, last partial
    let a = pseudo_batch(&cfg, batch, 77);
    let b = pseudo_batch(&cfg, batch, 78);
    let spec = PipelineSpec::polymul();

    let mut sharded = ShardedBpNtt::new(&cfg, 3).unwrap();
    let wave_out = sharded
        .run_pipeline_batch(&spec, ExecMode::Replay, &[&a, &b])
        .unwrap();
    assert_eq!(wave_out.len(), batch);
    assert_eq!(
        sharded.last_wave_shard_secs().len(),
        3,
        "three chunks → three participating shards"
    );

    let mut single = BpNtt::new(cfg).unwrap();
    let mut expect = Vec::new();
    for (ca, cb) in a.chunks(lanes).zip(b.chunks(lanes)) {
        expect.extend(
            single
                .run_pipeline(&spec, ExecMode::Replay, &[ca, cb])
                .unwrap(),
        );
    }
    assert_eq!(wave_out, expect);

    for (i, out) in wave_out.iter().enumerate() {
        let reference = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
        assert_eq!(out, &reference, "pair {i}");
    }
}

/// The sharded batch wrappers are the canned pipelines: forward_batch,
/// roundtrip_batch and polymul_batch produce identical results to
/// explicit `run_pipeline_batch` calls with the corresponding specs.
#[test]
fn sharded_batch_wrappers_are_canned_pipelines() {
    let cfg = config(0);
    let batch = pseudo_batch(&cfg, 7, 31);
    let b = pseudo_batch(&cfg, 7, 32);

    let mut wrapped = ShardedBpNtt::new(&cfg, 2).unwrap();
    let mut explicit = ShardedBpNtt::new(&cfg, 2).unwrap();

    assert_eq!(
        wrapped.forward_batch(&batch).unwrap(),
        explicit
            .run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[&batch])
            .unwrap()
    );
    assert_eq!(
        wrapped.roundtrip_batch(&batch).unwrap(),
        explicit
            .run_pipeline_batch(&PipelineSpec::roundtrip(), ExecMode::Replay, &[&batch])
            .unwrap()
    );
    assert_eq!(
        wrapped.polymul_batch(&batch, &b).unwrap(),
        explicit
            .run_pipeline_batch(&PipelineSpec::polymul(), ExecMode::Replay, &[&batch, &b])
            .unwrap()
    );
}

/// NTT-domain caching through the spectral graph: forward once with one
/// pipeline, then run pointwise+inverse products against the cached
/// spectra — results must match the reference negacyclic product, in
/// every execution mode.
#[test]
fn spectral_polymul_matches_reference_in_all_modes() {
    let cfg = config(0);
    let params = cfg.params().clone();
    let t = TwiddleTable::new(&params);
    let a = pseudo_batch(&cfg, 3, 91);
    let b = pseudo_batch(&cfg, 3, 92);
    // Host-side NTT-domain cache: transform both operands via the plain
    // forward pipeline, then submit spectra to the spectral graph.
    let to_spectra = |polys: &[Vec<u64>]| -> Vec<Vec<u64>> {
        polys
            .iter()
            .map(|p| {
                let mut s = p.clone();
                ntt_in_place(&params, &t, &mut s).unwrap();
                s
            })
            .collect()
    };
    let sa = to_spectra(&a);
    let sb = to_spectra(&b);
    for mode in ExecMode::ALL {
        let mut acc = BpNtt::new(cfg.clone()).unwrap();
        let got = acc
            .run_pipeline(&PipelineSpec::polymul_spectral(), mode, &[&sa, &sb])
            .unwrap();
        for i in 0..3 {
            let expect = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
            assert_eq!(got[i], expect, "{mode:?} pair {i}");
        }
    }
}

/// Montgomery-debt bookkeeping across a multiply-accumulate chain: two
/// chained pointwise products (debt 2) fold into a single inverse scale
/// constant, and the result matches `a ⊛ b ⊛ c` computed by the software
/// reference.
#[test]
fn chained_pointwise_folds_debt_into_one_scale() {
    // Three 64-point operand slots need 3·64 + 6 = 198 rows.
    let cfg = BpNttConfig::new(200, 128, 14, NttParams::new(64, 7681).unwrap()).unwrap();
    let params = cfg.params().clone();
    let q = params.modulus();
    let a = pseudo_batch(&cfg, 2, 55);
    let b = pseudo_batch(&cfg, 2, 56);
    let c = pseudo_batch(&cfg, 2, 57);
    let spec = PipelineSpec::new()
        .input(0)
        .input(1)
        .input(2)
        .forward(0)
        .forward(1)
        .forward(2)
        .pointwise(0, 1)
        .pointwise(0, 2)
        .inverse(0)
        .output(0);
    let mut acc = BpNtt::new(cfg).unwrap();
    let pipe = acc.compile_pipeline(&spec).unwrap();
    assert_eq!(
        pipe.segments(),
        6,
        "no extra compensation segment: the debt folds into the inverse"
    );
    let got = acc
        .run_pipeline(&spec, ExecMode::Replay, &[&a, &b, &c])
        .unwrap();
    for i in 0..2 {
        let ab = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
        let abc = polymul_schoolbook(&params, &ab, &c[i]).unwrap();
        assert_eq!(got[i], abc, "pair {i} (q={q})");
    }
}

/// ScaleBy folds pending debt too: pointwise followed by a ScaleBy (no
/// inverse) yields the plainly scaled NTT-domain product.
#[test]
fn scale_by_folds_pending_debt() {
    let cfg = config(0);
    let params = cfg.params().clone();
    let q = params.modulus();
    let t = TwiddleTable::new(&params);
    let a = pseudo_batch(&cfg, 1, 60);
    let b = pseudo_batch(&cfg, 1, 61);
    let spec = PipelineSpec::new()
        .input(0)
        .input(1)
        .forward(0)
        .forward(1)
        .pointwise(0, 1)
        .scale_by(0, 5)
        .output(0);
    let mut acc = BpNtt::new(cfg).unwrap();
    let pipe = acc.compile_pipeline(&spec).unwrap();
    assert_eq!(pipe.segments(), 4, "debt folds into the ScaleBy constant");
    let got = acc
        .run_pipeline(&spec, ExecMode::Replay, &[&a, &b])
        .unwrap();
    let (mut ea, mut eb) = (a[0].clone(), b[0].clone());
    ntt_in_place(&params, &t, &mut ea).unwrap();
    ntt_in_place(&params, &t, &mut eb).unwrap();
    let expect: Vec<u64> = ea
        .iter()
        .zip(&eb)
        .map(|(&x, &y)| mul_mod(mul_mod(x, y, q), 5, q))
        .collect();
    assert_eq!(got[0], expect);
}

/// Sharded pipeline input validation is typed: input-count mismatches
/// and unequal slot batches are rejected before any compilation.
#[test]
fn sharded_pipeline_validation_is_typed() {
    let cfg = config(0);
    let mut sharded = ShardedBpNtt::new(&cfg, 2).unwrap();
    let a = pseudo_batch(&cfg, 2, 70);
    let b = pseudo_batch(&cfg, 1, 71);
    assert!(matches!(
        sharded.run_pipeline_batch(&PipelineSpec::polymul(), ExecMode::Replay, &[&a]),
        Err(BpNttError::InvalidPipeline { .. })
    ));
    // No-input (resident) graphs are a single-engine feature; the
    // sharded path rejects them instead of silently returning Ok(empty).
    assert!(matches!(
        sharded.run_pipeline_batch(
            &PipelineSpec::new().forward(0).output(0),
            ExecMode::Replay,
            &[]
        ),
        Err(BpNttError::InvalidPipeline { .. })
    ));
    assert!(matches!(
        sharded.run_pipeline_batch(&PipelineSpec::polymul(), ExecMode::Replay, &[&a, &b]),
        Err(BpNttError::BatchMismatch { a: 2, b: 1 })
    ));
    // Rejected calls clear the shard timings like every other early
    // return.
    assert!(sharded.last_wave_shard_secs().is_empty());
}
