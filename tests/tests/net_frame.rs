//! Property and adversarial tests for the `bpntt-net` wire codec.
//!
//! The codec is the trust boundary between hostile sockets and the
//! verified pipeline, so the bar is: arbitrary submissions round-trip
//! exactly, and arbitrary *bytes* — truncations, oversized prefixes,
//! bad versions, garbage — produce typed [`FrameError`]s, never panics.

use proptest::prelude::*;

use bpntt_core::{ExecMode, PipelineSpec};
use bpntt_net::{
    decode_poly_body, decode_request, decode_response, encode_poly_body, encode_request,
    encode_response, read_frame, FrameError, FrameLimits, RecvError, Request, Response,
    SubmitRequest, WireErrorCode,
};

/// Deterministic polynomial from a seed (the codec does not care about
/// reduction; that is the service's job).
fn poly_from(seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z ^ (z >> 29)
        })
        .collect()
}

/// Strategy pieces → a structurally arbitrary submission (not
/// necessarily a *valid* pipeline — the codec must carry invalid specs
/// too; semantic validation happens in the service).
#[allow(clippy::type_complexity)]
fn build_submit(
    (mode_sel, tenant_sel, deadline_ms): (u8, u32, u32),
    ops: Vec<(u8, u8, u8, u64)>,
    ins: Vec<(u8, u64)>,
    ((out_flag, out_slot), n): ((u8, u8), usize),
) -> SubmitRequest {
    let mut spec = PipelineSpec::new();
    for (tag, a, b, factor) in ops {
        spec = match tag {
            1 => spec.forward(a),
            2 => spec.inverse(a),
            3 => spec.pointwise(a, b),
            _ => spec.scale_by(a, factor),
        };
    }
    for &(slot, _) in &ins {
        spec = spec.input(slot);
    }
    if out_flag == 1 {
        spec = spec.output(out_slot);
    }
    SubmitRequest {
        tenant: if tenant_sel == 0 {
            None
        } else {
            Some(tenant_sel * 7919)
        },
        mode: match mode_sel {
            0 => ExecMode::Replay,
            1 => ExecMode::FusedEmit,
            _ => ExecMode::Generic,
        },
        deadline_ms,
        spec,
        inputs: ins.iter().map(|&(_, seed)| poly_from(seed, n)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every structurally arbitrary submission round-trips exactly.
    #[test]
    fn submit_round_trip(
        hdr in (0u8..3, 0u32..5, any::<u32>()),
        ops in proptest::collection::vec((1u8..=4, 0u8..4, 0u8..4, any::<u64>()), 0..7),
        ins in proptest::collection::vec((0u8..4, any::<u64>()), 0..4),
        tail in ((0u8..2, 0u8..4), 0usize..17),
    ) {
        let sub = build_submit(hdr, ops, ins, tail);
        let req = Request::Submit(sub);
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes, &FrameLimits::default()), Ok(req));
    }

    /// Every *proper prefix* of a valid frame decodes to a typed error
    /// (the structure is prefix-determined, so truncation can never be
    /// silently accepted) — and never panics.
    #[test]
    fn truncation_is_typed(
        hdr in (0u8..3, 0u32..5, any::<u32>()),
        ops in proptest::collection::vec((1u8..=4, 0u8..4, 0u8..4, any::<u64>()), 0..5),
        ins in proptest::collection::vec((0u8..4, any::<u64>()), 1..4),
        tail in ((0u8..2, 0u8..4), 1usize..9),
        frac in 0u32..1000,
    ) {
        let bytes = encode_request(&Request::Submit(build_submit(hdr, ops, ins, tail)));
        let cut = (frac as usize * bytes.len()) / 1000;
        prop_assert!(cut < bytes.len());
        prop_assert!(decode_request(&bytes[..cut], &FrameLimits::default()).is_err());
    }

    /// Arbitrary garbage never panics the decoder (and anything it does
    /// accept must re-encode without panicking either).
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        if let Ok(req) = decode_request(&bytes, &FrameLimits::default()) {
            let _ = encode_request(&req);
        }
        let _ = decode_response(&bytes);
        let _ = decode_poly_body(&bytes);
    }

    /// Response and poly-body codecs round-trip.
    #[test]
    fn response_round_trip(seed in any::<u64>(), n in 0usize..33, retry in any::<u32>()) {
        let poly = poly_from(seed, n);
        prop_assert_eq!(decode_poly_body(&encode_poly_body(&poly)), Ok(poly.clone()));
        let ok = Response::Ok(encode_poly_body(&poly));
        prop_assert_eq!(decode_response(&encode_response(&ok)), Ok(ok));
        let err = Response::Err {
            code: WireErrorCode::Overloaded,
            retry_after_ms: retry,
            message: format!("queue full ({seed})"),
        };
        prop_assert_eq!(decode_response(&encode_response(&err)), Ok(err));
    }
}

fn valid_submit_bytes() -> Vec<u8> {
    encode_request(&Request::Submit(SubmitRequest {
        tenant: None,
        mode: ExecMode::Replay,
        deadline_ms: 0,
        spec: PipelineSpec::forward_ntt(),
        inputs: vec![vec![1, 2, 3, 4]],
    }))
}

#[test]
fn adversarial_bytes_yield_typed_errors() {
    let limits = FrameLimits::default();
    let good = valid_submit_bytes();

    // Empty payload: truncated before the magic.
    assert!(matches!(
        decode_request(&[], &limits),
        Err(FrameError::Truncated { .. })
    ));

    // Wrong magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    assert_eq!(decode_request(&bad, &limits), Err(FrameError::BadMagic));

    // Unknown version.
    let mut bad = good.clone();
    bad[4] = 99;
    assert_eq!(
        decode_request(&bad, &limits),
        Err(FrameError::BadVersion { version: 99 })
    );

    // Unknown request kind.
    let mut bad = good.clone();
    bad[5] = 200;
    assert_eq!(
        decode_request(&bad, &limits),
        Err(FrameError::BadKind { kind: 200 })
    );

    // Unknown execution mode (byte 10: after magic+ver+kind+tenant).
    let mut bad = good.clone();
    bad[10] = 7;
    assert_eq!(
        decode_request(&bad, &limits),
        Err(FrameError::BadMode { mode: 7 })
    );

    // Unknown op tag (byte 17: first op after the u16 op count).
    let mut bad = good.clone();
    assert_eq!(bad[17], 1, "fixture layout changed");
    bad[17] = 9;
    assert_eq!(
        decode_request(&bad, &limits),
        Err(FrameError::BadOpTag { tag: 9 })
    );

    // Trailing garbage after a complete message.
    let mut bad = good.clone();
    bad.extend_from_slice(&[0, 0, 0]);
    assert_eq!(
        decode_request(&bad, &limits),
        Err(FrameError::TrailingBytes { extra: 3 })
    );

    // Op count beyond the cap.
    let mut bad = good.clone();
    bad[15..17].copy_from_slice(&1000u16.to_le_bytes());
    assert_eq!(
        decode_request(&bad, &limits),
        Err(FrameError::TooManyOps {
            ops: 1000,
            max: limits.max_ops
        })
    );

    // Unknown wire error code in a response.
    let mut resp = encode_response(&Response::Err {
        code: WireErrorCode::Internal,
        retry_after_ms: 0,
        message: String::new(),
    });
    resp[6] = 77;
    assert_eq!(
        decode_response(&resp),
        Err(FrameError::BadErrorCode { code: 77 })
    );

    // Non-UTF-8 error message.
    let mut resp = encode_response(&Response::Err {
        code: WireErrorCode::Internal,
        retry_after_ms: 0,
        message: "x".into(),
    });
    let end = resp.len() - 1;
    resp[end] = 0xFF;
    assert_eq!(decode_response(&resp), Err(FrameError::BadText));
}

#[test]
fn slot_and_poly_caps_are_enforced() {
    let limits = FrameLimits {
        max_slots: 2,
        max_poly_len: 8,
        ..FrameLimits::default()
    };
    let sub = |slots: usize, n: usize| {
        let mut spec = PipelineSpec::new();
        for s in 0..slots {
            spec = spec.input(s as u8);
        }
        encode_request(&Request::Submit(SubmitRequest {
            tenant: None,
            mode: ExecMode::Replay,
            deadline_ms: 0,
            spec,
            inputs: (0..slots).map(|_| vec![0u64; n]).collect(),
        }))
    };
    assert_eq!(
        decode_request(&sub(3, 4), &limits),
        Err(FrameError::TooManySlots { slots: 3, max: 2 })
    );
    assert_eq!(
        decode_request(&sub(1, 9), &limits),
        Err(FrameError::PolyTooLong { n: 9, max: 8 })
    );
    assert!(decode_request(&sub(2, 8), &limits).is_ok());
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let limits = FrameLimits::default();
    // A 4 GiB promise must be refused from the 4 prefix bytes alone.
    let hostile = u32::MAX.to_le_bytes();
    match read_frame(&mut &hostile[..], &limits) {
        Err(RecvError::Frame(FrameError::FrameTooLarge { len, max })) => {
            assert_eq!(len, u32::MAX);
            assert_eq!(max, limits.max_frame_bytes);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // Clean EOF at a frame boundary is Closed, not an error soup.
    assert!(matches!(
        read_frame(&mut &[][..], &limits),
        Err(RecvError::Closed)
    ));
    // EOF inside the prefix is a truncation-style I/O error.
    assert!(matches!(
        read_frame(&mut &[1u8, 0][..], &limits),
        Err(RecvError::Io(_))
    ));
    // EOF inside a promised payload likewise.
    let mut partial = 100u32.to_le_bytes().to_vec();
    partial.extend_from_slice(&[0u8; 10]);
    assert!(matches!(
        read_frame(&mut &partial[..], &limits),
        Err(RecvError::Io(_))
    ));
}
