//! Integration tests for the TCP front-end: real sockets against a
//! real service, covering the connection-chaos ladder — malformed
//! frames answered typed on a surviving connection, hostile prefixes
//! dropped, slow-loris clients timed out, mid-request disconnects
//! cancelling their tickets, and deadlines propagating over the wire.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bpntt_core::{BpNttConfig, ExecMode, NttService, PipelineSpec, ServiceOptions, VerifyPolicy};
use bpntt_net::{
    decode_response, encode_request, write_frame, ClientError, FrameLimits, NetClient, NetOptions,
    NetServer, Request, Response, SubmitRequest, WireErrorCode,
};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::{NttParams, Polynomial, TwiddleTable};

fn config8() -> BpNttConfig {
    BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
}

fn start(opts: ServiceOptions) -> (Arc<NttService>, NetServer) {
    let service = Arc::new(NttService::start(&config8(), opts).unwrap());
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetOptions {
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(2),
            limits: FrameLimits::default(),
        },
    )
    .unwrap();
    (service, server)
}

fn pseudo(seed: u64) -> Vec<u64> {
    Polynomial::pseudo_random(&NttParams::new(8, 97).unwrap(), seed).into_coeffs()
}

fn forward_submit(seed: u64, deadline_ms: u32) -> SubmitRequest {
    SubmitRequest {
        tenant: None,
        mode: ExecMode::Replay,
        deadline_ms,
        spec: PipelineSpec::forward_ntt(),
        inputs: vec![pseudo(seed)],
    }
}

#[test]
fn submit_over_tcp_is_reference_exact() {
    let (service, server) = start(ServiceOptions::default());
    let params = NttParams::new(8, 97).unwrap();
    let twiddles = TwiddleTable::new(&params);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    for seed in 1..6u64 {
        let got = client.submit(forward_submit(seed, 0)).unwrap();
        let mut expect = pseudo(seed);
        ntt_in_place(&params, &twiddles, &mut expect).unwrap();
        assert_eq!(got, expect, "wire round-trip diverged (seed {seed})");
    }
    // Both metrics exports are served over the same connection.
    let json = client.metrics_json().unwrap();
    assert!(json.contains("\"completed\": 5"));
    let prom = client.metrics_prometheus().unwrap();
    assert!(prom.contains("bpntt_completed_total 5"));
    server.shutdown();
    drop(service);
}

#[test]
fn malformed_frame_answers_typed_and_connection_survives() {
    let (service, server) = start(ServiceOptions::default());
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Well-framed garbage: typed BadFrame response, connection kept.
    client
        .send_raw(&{
            let mut f = (11u32).to_le_bytes().to_vec();
            f.extend_from_slice(b"XXXXGARBAGE");
            f
        })
        .unwrap();
    let frame = client.recv_frame().unwrap();
    match decode_response(&frame).unwrap() {
        Response::Err { code, .. } => assert_eq!(code, WireErrorCode::BadFrame),
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The same connection still works afterwards.
    client.ping().unwrap();
    assert!(client.submit(forward_submit(9, 0)).is_ok());
    server.shutdown();
    drop(service);
}

#[test]
fn oversized_length_prefix_drops_the_connection() {
    let (service, server) = start(ServiceOptions::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    // The server answers typed (FrameTooLarge → BadFrame) and hangs up;
    // reading to EOF must terminate instead of seeing a 4 GiB echo.
    let mut all = Vec::new();
    stream.read_to_end(&mut all).unwrap();
    let payload = &all[4..];
    match decode_response(payload).unwrap() {
        Response::Err { code, message, .. } => {
            assert_eq!(code, WireErrorCode::BadFrame);
            assert!(message.contains("exceeds"), "got: {message}");
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    server.shutdown();
    drop(service);
}

#[test]
fn slow_loris_is_dropped_at_the_read_timeout() {
    let (service, server) = start(ServiceOptions::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Half a length prefix, then stall. The server's 200 ms read
    // timeout must drop us; the subsequent read sees EOF (or a reset),
    // never a hang.
    stream.write_all(&[0x04, 0x00]).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let t0 = Instant::now();
    let mut buf = [0u8; 8];
    let outcome = stream.read(&mut buf);
    assert!(
        matches!(outcome, Ok(0) | Err(_)),
        "server must drop a stalled frame, got {outcome:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "drop must come from the server's timeout, not ours"
    );
    server.shutdown();
    drop(service);
}

#[test]
fn mid_request_disconnect_cancels_the_pending_ticket() {
    // A long coalesce window parks the request in the queue, so the
    // client can vanish while it is still pending.
    let (service, server) = start(ServiceOptions {
        coalesce_window: Duration::from_millis(400),
        ..ServiceOptions::default()
    });
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write_frame(
            &mut stream,
            &encode_request(&Request::Submit(forward_submit(3, 0))),
        )
        .unwrap();
        // Drop without reading the response: mid-request disconnect.
    }
    // The server's peek loop (20 ms cadence) must notice the EOF and
    // drop the ticket, which cancels the queued request before (or as)
    // the wave forms.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = service.metrics();
        if m.cancelled >= 1 {
            assert_eq!(m.completed, 0, "a cancelled request must not complete");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the ticket: {:?}",
            (m.cancelled, m.completed, m.failed)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    drop(service);
}

#[test]
fn deadline_propagates_from_frame_to_typed_expiry() {
    // Coalesce far longer than the 1 ms wire deadline: the request
    // expires in the queue and the client hears DeadlineExpired.
    let (service, server) = start(ServiceOptions {
        coalesce_window: Duration::from_millis(300),
        ..ServiceOptions::default()
    });
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.submit(forward_submit(4, 1)) {
        Err(ClientError::Remote { code, .. }) => {
            assert_eq!(code, WireErrorCode::DeadlineExpired);
        }
        other => panic!("expected a wire DeadlineExpired, got {other:?}"),
    }
    server.shutdown();
    drop(service);
}

#[test]
fn shed_requests_carry_retry_hints_over_the_wire() {
    let (service, server) = start(ServiceOptions {
        max_queue: 0,
        ..ServiceOptions::default()
    });
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.submit(forward_submit(5, 0)) {
        Err(ClientError::Remote {
            code,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(code, WireErrorCode::Overloaded);
            assert!(retry_after_ms >= 1, "shed must carry a back-off hint");
        }
        other => panic!("expected a wire Overloaded, got {other:?}"),
    }
    server.shutdown();
    drop(service);
}

#[test]
fn verified_service_over_wire_stays_exact_under_faults() {
    use bpntt_core::FaultPlan;
    let (service, server) = start(ServiceOptions {
        verify: VerifyPolicy::Full,
        retry_budget: 2,
        fault_plan: Some(FaultPlan::seeded(0xFEED).transient_rate(0.002)),
        ..ServiceOptions::default()
    });
    let params = NttParams::new(8, 97).unwrap();
    let twiddles = TwiddleTable::new(&params);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for seed in 20..40u64 {
        let got = client.submit(forward_submit(seed, 0)).unwrap();
        let mut expect = pseudo(seed);
        ntt_in_place(&params, &twiddles, &mut expect).unwrap();
        assert_eq!(got, expect, "fault leaked through the wire (seed {seed})");
    }
    server.shutdown();
    let m = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("service still shared"))
        .shutdown();
    assert_eq!(m.completed, 20);
    assert_eq!(m.failed, 0);
}
