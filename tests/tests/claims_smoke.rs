//! Smoke tests over the evaluation harness: the cheap claims exactly, and
//! one medium simulation per harness path.

use bpntt_baselines::{footprint, published};
use bpntt_core::Layout;
use bpntt_eval::{ablation, fig7, fig8, roofline, table1};
use bpntt_ntt::NttParams;
use bpntt_sram::geometry::{AreaModel, ArrayGeometry, FrequencyModel};

#[test]
fn capacity_and_geometry_claims() {
    assert_eq!(Layout::storage_capacity(256, 256, 256), 250);
    assert_eq!(Layout::storage_capacity(256, 256, 14), 4500);
    let b = AreaModel::cmos_45nm().breakdown(ArrayGeometry::paper_256x256());
    assert!((b.total_mm2() - 0.063).abs() < 0.004);
    assert!(b.overhead_fraction() < 0.02);
    let f = FrequencyModel::cmos_45nm().f_max_hz(ArrayGeometry::paper_256x256());
    assert!((f / 1e9 - 3.8).abs() < 0.1);
}

#[test]
fn table1_published_columns_consistent() {
    for d in published::all_baselines() {
        // TP recomputation is always possible and finite.
        assert!(
            d.tput_per_power().is_finite() && d.tput_per_power() > 0.0,
            "{}",
            d.name
        );
        if let Some(ta) = d.tput_per_area() {
            assert!(ta > 0.0, "{}", d.name);
        }
    }
    let s = table1::render(&published::all_baselines());
    assert!(s.contains("MeNTT") && s.contains("CPU"));
}

#[test]
fn fig7_footprints() {
    let cells: Vec<usize> = footprint::fig7(128, 32)
        .iter()
        .map(footprint::Footprint::cells)
        .collect();
    assert_eq!(cells, vec![4288, 16_640, 524_288]);
    assert!(fig7::render(128, 32).contains("BP-NTT"));
}

#[test]
fn roofline_is_cache_bound() {
    let m = roofline::Machine::typical_x86();
    for p in roofline::ntt_kernel_points(&NttParams::dilithium().unwrap(), &m) {
        assert!(
            p.bound_by == "L1" || p.bound_by == "L2",
            "{}: {}",
            p.name,
            p.bound_by
        );
        assert_eq!(p.bytes[3], 0, "steady state must not touch DRAM");
    }
}

#[test]
fn packing_claim_exact() {
    let (n, n1, loss) = ablation::packing_loss(256, 32);
    assert_eq!((n, n1), (8, 7));
    assert!((loss - 0.125).abs() < 1e-12);
}

#[test]
fn medium_simulation_shift_ratio() {
    // One real (small) accelerator run through the ablation path.
    let s = ablation::shift_accounting(70, 64, 14, 64, 7681).unwrap();
    assert!(s.bp_shifts > 0);
    assert!(s.ratio > 1.3 && s.ratio < 3.5, "ratio {:.2}", s.ratio);
}

#[test]
fn fig8a_small_sweep_monotonic() {
    let pts = fig8::fig8a(&[4, 8]).unwrap();
    assert!(pts[0].cycles < pts[1].cycles);
    assert!(pts[0].energy_per_ntt_nj < pts[1].energy_per_ntt_nj);
}
