//! Cross-crate RNS/CRT equivalence tests: the multi-limb engine against
//! the hand-rolled bigint reference, limb fan-out against the sequential
//! baseline, compiled-plan sharing across sibling contexts and service
//! tenant groups, a chaos drill (a dead row on one limb must heal
//! through that limb's own recovery ladder without ever corrupting the
//! CRT reconstruction), and the headline acceptance point: a 3-limb
//! ~90-bit negacyclic polymul at N = 256, bit-exact in **all three**
//! [`ExecMode`]s on **both** backends.

use std::sync::Arc;

use proptest::prelude::*;

use bpntt_core::{
    BackendKind, BigUint, ExecMode, FaultPlan, NttService, PipelineSpec, RecoveryOptions, RnsBasis,
    RnsContext, RnsPlanCache, RnsRequest, ServiceOptions, VerifyPolicy,
};
use bpntt_modmath::primes::find_ntt_primes;
use bpntt_rns::reference::negacyclic_polymul_basis;

/// 14-bit NTT-friendly primes, valid for n up to 512.
const P14: [u64; 3] = [12289, 13313, 15361];

/// Deterministic degree-`n` polynomial with coefficients spread over the
/// full multi-limb range `0..Q` (xorshift over two 64-bit limbs).
fn big_poly(basis: &RnsBasis, seed: u64) -> Vec<BigUint> {
    let mut x = seed | 1;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..basis.n())
        .map(|_| {
            let limbs = vec![step(), step(), step()];
            BigUint::from_limbs(limbs).rem(basis.modulus())
        })
        .collect()
}

/// Polymul-capable geometry for degree `n`: two operand slots need
/// `2n + 6` rows (plus the intermediate rows every config carries).
fn rows_for(n: usize) -> usize {
    2 * n + 12
}

/// Runs one negacyclic polymul through an [`RnsContext`] and checks it
/// against the bigint reference.
fn check_polymul(
    n: usize,
    primes: &[u64],
    bitwidth: usize,
    backend: BackendKind,
    mode: ExecMode,
    seed: u64,
) {
    let basis = Arc::new(RnsBasis::new(n, primes).unwrap());
    let mut ctx = RnsContext::new(
        Arc::clone(&basis),
        rows_for(n),
        128,
        bitwidth,
        basis.limbs(),
        backend,
    )
    .unwrap();
    let a = big_poly(&basis, seed);
    let b = big_poly(&basis, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let got = ctx
        .run_rns(&PipelineSpec::polymul(), mode, &[a.clone(), b.clone()])
        .unwrap();
    let expect = negacyclic_polymul_basis(&a, &b, &basis).unwrap();
    assert_eq!(got, expect, "n={n} primes={primes:?} {backend:?} {mode:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// 2-limb (~28-bit Q) polymul ≡ bigint reference.
    #[test]
    fn two_limb_polymul_matches_reference(seed in any::<u64>()) {
        check_polymul(64, &P14[..2], 16, BackendKind::Sim, ExecMode::Replay, seed);
    }

    /// 3-limb (~42-bit Q) polymul ≡ bigint reference at n = 128.
    #[test]
    fn three_limb_polymul_matches_reference(seed in any::<u64>()) {
        check_polymul(128, &P14, 16, BackendKind::Sim, ExecMode::Replay, seed);
    }

    /// 5-limb (~70-bit Q) polymul ≡ bigint reference; the basis comes
    /// from the `find_ntt_primes` search the paper's RNS extension
    /// would use.
    #[test]
    fn five_limb_polymul_matches_reference(seed in any::<u64>()) {
        let primes = find_ntt_primes(14, 64, 5).unwrap();
        check_polymul(64, &primes, 16, BackendKind::Sim, ExecMode::Replay, seed);
    }

    /// Mixed scheme primes (Kyber's 3329 beside two 14-bit limbs) at the
    /// largest degree 3329 supports (n = 128 ⇒ 2n | 3328).
    #[test]
    fn mixed_scheme_basis_matches_reference(seed in any::<u64>()) {
        check_polymul(128, &[3329, 12289, 7681], 16, BackendKind::Sim, ExecMode::Replay, seed);
    }

    /// Decompose → reconstruct is the identity on random big polys.
    #[test]
    fn decompose_reconstruct_round_trips(seed in any::<u64>()) {
        let basis = RnsBasis::new(64, &P14).unwrap();
        let poly = big_poly(&basis, seed);
        let limbs = basis.decompose_poly(&poly).unwrap();
        prop_assert_eq!(basis.reconstruct_poly(&limbs).unwrap(), poly);
    }
}

/// Fan-out and the sequential baseline agree bit-for-bit, and fan-out
/// occupies strictly more of the shard budget in one wave.
#[test]
fn fanned_matches_sequential_and_raises_occupancy() {
    let basis = Arc::new(RnsBasis::new(64, &P14).unwrap());
    let mut ctx = RnsContext::new(
        Arc::clone(&basis),
        rows_for(64),
        128,
        16,
        2 * basis.limbs(),
        BackendKind::Sim,
    )
    .unwrap();
    let a = big_poly(&basis, 7);
    let b = big_poly(&basis, 8);
    let spec = PipelineSpec::polymul();
    let slots_a = vec![a.clone()];
    let slots_b = vec![b.clone()];
    let inputs: Vec<&[Vec<BigUint>]> = vec![&slots_a, &slots_b];

    let fanned = ctx.run_rns_batch(&spec, ExecMode::Replay, &inputs).unwrap();
    let fanned_wave = ctx.last_wave().clone();
    let sequential = ctx
        .run_limbs_sequential(&spec, ExecMode::Replay, &inputs)
        .unwrap();
    let sequential_wave = ctx.last_wave().clone();

    assert_eq!(fanned, sequential, "fan-out must not change results");
    assert_eq!(fanned[0], negacyclic_polymul_basis(&a, &b, &basis).unwrap());
    assert!(
        fanned_wave.participating > sequential_wave.participating,
        "fan-out must occupy more shards per wave ({} vs {})",
        fanned_wave.participating,
        sequential_wave.participating
    );
    assert!(fanned_wave.occupancy > sequential_wave.occupancy);
}

/// Sibling contexts over one shared plan cache compile each limb prime
/// once: the second context imports all `L` plans (hits ≥ L − 1 holds
/// with margin).
#[test]
fn sibling_contexts_share_compiled_plans() {
    let basis = Arc::new(RnsBasis::new(64, &P14).unwrap());
    let cache = RnsPlanCache::new();
    let spec = PipelineSpec::polymul();
    let mk = |cache: &RnsPlanCache| {
        RnsContext::with_plan_cache(
            Arc::clone(&basis),
            rows_for(64),
            128,
            16,
            basis.limbs(),
            BackendKind::Sim,
            cache.clone(),
        )
        .unwrap()
    };
    let mut first = mk(&cache);
    first.compile(&spec).unwrap();
    let baseline_hits = cache.hits();
    let mut second = mk(&cache);
    second.compile(&spec).unwrap();
    let hits = cache.hits() - baseline_hits;
    assert!(
        hits >= (basis.limbs() - 1) as u64,
        "expected ≥ L−1 plan-cache hits, got {hits}"
    );
    // Shared plans execute correctly on the importing context.
    let a = big_poly(&basis, 9);
    let b = big_poly(&basis, 10);
    let got = second
        .run_rns(&spec, ExecMode::Replay, &[a.clone(), b.clone()])
        .unwrap();
    assert_eq!(got, negacyclic_polymul_basis(&a, &b, &basis).unwrap());
}

/// Chaos drill: a dead row seeded on ONE limb's engine corrupts that
/// limb persistently. Its own recovery ladder (verify → retry →
/// quarantine → software fallback) must heal it locally, the other
/// limbs must run clean, and the CRT reconstruction must stay exact.
#[test]
fn dead_row_on_one_limb_heals_without_corrupting_reconstruction() {
    let basis = Arc::new(RnsBasis::new(64, &P14).unwrap());
    let mut ctx = RnsContext::new(
        Arc::clone(&basis),
        rows_for(64),
        128,
        16,
        basis.limbs(),
        BackendKind::Sim,
    )
    .unwrap();
    ctx.set_recovery(RecoveryOptions {
        verify: VerifyPolicy::Full,
        retry_budget: 1,
        software_fallback: true,
    });
    ctx.install_fault_plan_on_limb(1, &FaultPlan::seeded(42).dead_row(3));

    let a = big_poly(&basis, 11);
    let b = big_poly(&basis, 12);
    let got = ctx
        .run_rns(
            &PipelineSpec::polymul(),
            ExecMode::Replay,
            &[a.clone(), b.clone()],
        )
        .unwrap();
    assert_eq!(
        got,
        negacyclic_polymul_basis(&a, &b, &basis).unwrap(),
        "reconstruction must be exact despite the dead row on limb 1"
    );
    // The corruption was detected and healed on limb 1 …
    let r1 = ctx.last_recovery(1);
    assert!(
        r1.faults_detected >= 1,
        "limb 1 must have detected its dead row"
    );
    // … and the healthy limbs never entered their ladders.
    for limb in [0, 2] {
        assert_eq!(
            ctx.last_recovery(limb).faults_detected,
            0,
            "limb {limb} ran clean"
        );
    }
}

/// The acceptance point: a 3-limb (~90-bit `Q`) negacyclic polymul at
/// N = 256, bit-exact against the bigint reference in all three
/// [`ExecMode`]s on both backends.
#[test]
fn ninety_bit_acceptance_all_modes_both_backends() {
    let primes = find_ntt_primes(30, 256, 3).unwrap();
    let basis = Arc::new(RnsBasis::new(256, &primes).unwrap());
    assert!(
        basis.modulus_bits() >= 88,
        "3 × 30-bit limbs must reach ~90 bits (got {})",
        basis.modulus_bits()
    );
    let a = big_poly(&basis, 21);
    let b = big_poly(&basis, 22);
    let expect = negacyclic_polymul_basis(&a, &b, &basis).unwrap();
    for backend in [BackendKind::Sim, BackendKind::Native] {
        let mut ctx = RnsContext::new(
            Arc::clone(&basis),
            rows_for(256),
            62,
            31,
            basis.limbs(),
            backend,
        )
        .unwrap();
        for mode in ExecMode::ALL {
            let got = ctx
                .run_rns(&PipelineSpec::polymul(), mode, &[a.clone(), b.clone()])
                .unwrap();
            assert_eq!(got, expect, "{backend:?} {mode:?}");
        }
    }
}

/// Service-level smoke: two tenant groups over one basis share compiled
/// artifacts (≥ L − 1 pipeline-cache hits for the second group) and
/// both reconstruct exactly.
#[test]
fn service_rns_groups_share_artifacts_and_reconstruct() {
    let service = NttService::start(
        &bpntt_core::BpNttConfig::paper_256pt_16bit().unwrap(),
        ServiceOptions::default(),
    )
    .unwrap();
    let basis = Arc::new(RnsBasis::new(64, &P14).unwrap());
    let h1 = service
        .add_rns_tenant(rows_for(64), 128, 16, &basis)
        .unwrap();
    let before = service.metrics().pipeline_cache_hits;
    let h2 = service
        .add_rns_tenant(rows_for(64), 128, 16, &basis)
        .unwrap();
    let hits = service.metrics().pipeline_cache_hits - before;
    assert!(
        hits >= (basis.limbs() - 1) as u64,
        "second group must hit the artifact cache ≥ L−1 times (got {hits})"
    );
    let a = big_poly(&basis, 31);
    let b = big_poly(&basis, 32);
    let expect = negacyclic_polymul_basis(&a, &b, &basis).unwrap();
    for h in [&h1, &h2] {
        let got = service
            .submit_rns(h, RnsRequest::polymul(a.clone(), b.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(got.coefficients, expect);
    }
    let m = service.shutdown();
    assert_eq!(m.rns_requests, 2);
    assert_eq!(m.rns_limbs, 2 * basis.limbs() as u64);
    assert!(m.rns_fanout_waves >= 1);
}
