//! Property tests for the compile-once/replay-many pipeline: a cached
//! compiled program must be *indistinguishable* from instruction-by-
//! instruction emission — bit-identical array rows (all of them, scratch
//! and constants included) and bit-identical [`Stats`] (cycles, counts,
//! row I/O, and the floating-point energy total) — across random batches
//! and three cryptographic parameter sets:
//!
//! * Kyber-class: the original 13-bit Kyber prime 7681, 256 points;
//! * Dilithium: the 23-bit prime 8 380 417, 256 points;
//! * one HE level: a 30-bit RNS limb prime 1 073 738 753, 256 points.

use proptest::prelude::*;

use bpntt_core::{BpNtt, BpNttConfig, ExecMode, ShardedBpNtt};
use bpntt_ntt::NttParams;

/// The three parameter sets under test.
fn config(idx: usize) -> BpNttConfig {
    match idx {
        // Kyber-class prime in the paper's 14-bit design point (18 lanes).
        0 => BpNttConfig::paper_256pt_14bit().unwrap(),
        // Dilithium prime: 24-bit tiles, 10 lanes on 256 columns.
        1 => BpNttConfig::new(262, 256, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap(),
        // HE RNS limb: 30-bit prime ≡ 1 (mod 512), 31-bit tiles, 8 lanes.
        _ => BpNttConfig::new(262, 256, 31, NttParams::new(256, 1_073_738_753).unwrap()).unwrap(),
    }
}

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

/// Runs replay and emission side by side and asserts indistinguishability.
fn assert_replay_equivalent(idx: usize, seed: u64, inverse_too: bool) {
    let cfg = config(idx);
    let lanes = cfg.layout().lanes();
    // Vary the batch size too: partial batches leave zeroed lanes.
    let batch = 1 + (seed as usize) % lanes;
    let polys = pseudo_batch(&cfg, batch, seed);

    let mut replayed = BpNtt::new(cfg.clone()).unwrap();
    replayed.load_batch(&polys).unwrap();
    replayed.forward().unwrap();
    if inverse_too {
        replayed.inverse().unwrap();
    }

    let mut emitted = BpNtt::new(cfg.clone()).unwrap();
    emitted.load_batch(&polys).unwrap();
    emitted.forward_mode(ExecMode::FusedEmit).unwrap();
    if inverse_too {
        emitted.inverse_mode(ExecMode::FusedEmit).unwrap();
    }

    // Every physical row — coefficients, accumulator, temporaries,
    // constants — must match bit for bit.
    for r in 0..cfg.rows() {
        prop_assert_eq!(
            replayed.peek_row(r),
            emitted.peek_row(r),
            "row {} diverged (params {}, seed {})",
            r,
            idx,
            seed
        );
    }
    // And the statistics must be indistinguishable, including the
    // floating-point energy accumulator (same values, same order).
    let (rs, es) = (*replayed.stats(), *emitted.stats());
    prop_assert_eq!(rs.cycles, es.cycles);
    prop_assert_eq!(rs.counts, es.counts);
    prop_assert_eq!(rs.row_loads, es.row_loads);
    prop_assert_eq!(rs.row_stores, es.row_stores);
    prop_assert_eq!(rs.energy_pj.to_bits(), es.energy_pj.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Forward replay ≡ forward emission on the Kyber-class set.
    #[test]
    fn kyber_forward_replay_equivalent(seed in any::<u64>()) {
        assert_replay_equivalent(0, seed, false);
    }

    /// Forward + inverse replay ≡ emission on the Dilithium set.
    #[test]
    fn dilithium_roundtrip_replay_equivalent(seed in any::<u64>()) {
        assert_replay_equivalent(1, seed, true);
    }

    /// Forward replay ≡ emission on the HE-level set.
    #[test]
    fn he_level_forward_replay_equivalent(seed in any::<u64>()) {
        assert_replay_equivalent(2, seed, false);
    }
}

/// Replaying twice on fresh data gives the same answer as the first time —
/// the program cache has no hidden state (regression guard for scratch-row
/// reuse in the controller).
#[test]
fn replay_is_stateless_across_calls() {
    let cfg = config(1);
    let lanes = cfg.layout().lanes();
    let batch_a = pseudo_batch(&cfg, lanes, 7);
    let batch_b = pseudo_batch(&cfg, lanes, 8);

    let mut acc = BpNtt::new(cfg.clone()).unwrap();
    acc.load_batch(&batch_a).unwrap();
    acc.forward().unwrap();
    let first_a = acc.read_batch(lanes).unwrap();
    acc.load_batch(&batch_b).unwrap();
    acc.forward().unwrap();
    let first_b = acc.read_batch(lanes).unwrap();

    let mut fresh = BpNtt::new(cfg).unwrap();
    fresh.load_batch(&batch_b).unwrap();
    fresh.forward().unwrap();
    assert_eq!(fresh.read_batch(lanes).unwrap(), first_b);
    assert_ne!(first_a, first_b);
}

/// The sharded engine agrees with a single array processing the same
/// chunks sequentially (same programs, same per-shard data).
#[test]
fn sharded_replay_matches_single_array() {
    let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap();
    let lanes = cfg.layout().lanes();
    let batch = pseudo_batch(&cfg, 3 * lanes, 42);

    let mut sharded = ShardedBpNtt::new(&cfg, 3).unwrap();
    let sharded_out = sharded.forward_batch(&batch).unwrap();

    let mut single = BpNtt::new(cfg).unwrap();
    let mut expect = Vec::new();
    for chunk in batch.chunks(lanes) {
        single.load_batch(chunk).unwrap();
        single.forward().unwrap();
        expect.extend(single.read_batch(chunk.len()).unwrap());
    }
    assert_eq!(sharded_out, expect);
}
