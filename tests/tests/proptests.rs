//! Property-based tests over the whole stack.

use proptest::prelude::*;

use bpntt_core::{BpNttConfig, HealthOptions, Kernels, Layout, ShardedBpNtt};
use bpntt_modmath::bitparallel::{bp_modmul_full, bp_modmul_reduced};
use bpntt_modmath::bits::{bit_reverse, low_mask};
use bpntt_modmath::carrysave::CsPair;
use bpntt_modmath::montgomery::MontCtx;
use bpntt_modmath::zq::{add_mod, mul_mod, reduce_once, sub_mod};
use bpntt_ntt::polymul::{polymul_ntt, polymul_schoolbook};
use bpntt_ntt::{forward, inverse, NttParams, TwiddleTable};
use bpntt_sram::{BitRow, Controller, Instruction, RowAddr, SramArray};

/// Strategy: a width w ∈ 3..=24 and an odd modulus with one headroom bit.
fn width_and_modulus() -> impl Strategy<Value = (u32, u64)> {
    (3u32..=24).prop_flat_map(|w| {
        let max = (1u64 << (w - 1)) - 1;
        (Just(w), (3u64..=max.max(3)).prop_map(|q| q | 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2 (word model) equals the interleaved Montgomery
    /// reference for every in-headroom modulus.
    #[test]
    fn algorithm2_matches_montgomery((w, q) in width_and_modulus(), a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a % q, b % q);
        let ctx = MontCtx::new(q, w).unwrap();
        let out = bp_modmul_full(a, b, q, w);
        prop_assert!(out.is_exact(), "packing observations violated with headroom");
        prop_assert_eq!(out.value(), u128::from(ctx.mont_mul_interleaved(a, b)));
        prop_assert_eq!(bp_modmul_reduced(a, b, q, w), ctx.mont_mul(a, b));
    }

    /// Carry-save pairs always represent their value exactly.
    #[test]
    fn carry_save_value_invariant(adds in proptest::collection::vec(0u64..(1 << 50), 1..8)) {
        let mut p = CsPair::ZERO;
        let mut expect: u128 = 0;
        for a in adds {
            p = p.add(a);
            expect += u128::from(a);
            prop_assert_eq!(p.value(), expect);
        }
        let (v, _) = p.resolve();
        prop_assert_eq!(u128::from(v), expect);
    }

    /// Bit reversal is an involution and preserves the value set.
    #[test]
    fn bit_reverse_involution(bits in 1u32..=32, v in any::<u64>()) {
        let v = v & low_mask(bits);
        prop_assert_eq!(bit_reverse(bit_reverse(v, bits), bits), v);
    }

    /// NTT then inverse NTT is the identity for random valid parameters.
    #[test]
    fn ntt_roundtrip(seed in any::<u64>(), idx in 0usize..4) {
        let (n, q) = [(8usize, 97u64), (16, 193), (32, 12_289), (64, 7681)][idx];
        let params = NttParams::new(n, q).unwrap();
        let tw = TwiddleTable::new(&params);
        let mut x = seed | 1;
        let orig: Vec<u64> = (0..n).map(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            x % q
        }).collect();
        let mut a = orig.clone();
        forward::ntt_in_place(&params, &tw, &mut a).unwrap();
        inverse::intt_in_place(&params, &tw, &mut a).unwrap();
        prop_assert_eq!(a, orig);
    }

    /// NTT-based negacyclic multiplication equals schoolbook.
    #[test]
    fn polymul_matches_schoolbook(seed in any::<u64>()) {
        let params = NttParams::new(16, 12_289).unwrap();
        let mut x = seed | 1;
        let mut rand_poly = || -> Vec<u64> {
            (0..16).map(|_| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                x % 12_289
            }).collect()
        };
        let a = rand_poly();
        let b = rand_poly();
        prop_assert_eq!(
            polymul_ntt(&params, &a, &b).unwrap(),
            polymul_schoolbook(&params, &a, &b).unwrap()
        );
    }

    /// ISA instructions survive an encode/decode round trip.
    #[test]
    fn isa_roundtrip(dst in 0u16..1024, src0 in 0u16..1024, src1 in 0u16..1024,
                     op in 0u8..4, dual in any::<bool>(), shift in 0u8..3,
                     masked in any::<bool>(), pred in 0u8..3) {
        use bpntt_sram::{BitOp, PredMode, ShiftDir};
        let bitop = [BitOp::And, BitOp::Or, BitOp::Xor, BitOp::Nor][op as usize];
        let predmode = [PredMode::Always, PredMode::IfSet, PredMode::IfClear][pred as usize];
        let instr = Instruction::Binary {
            dst: RowAddr(dst),
            op: bitop,
            src0: RowAddr(src0),
            src1: RowAddr(src1),
            dst2: dual.then_some((RowAddr(src1 ^ 1), bitop)),
            shift: match shift {
                0 => None,
                1 => Some((ShiftDir::Left, masked)),
                _ => Some((ShiftDir::Right, masked)),
            },
            pred: predmode,
        };
        prop_assert_eq!(Instruction::decode(instr.encode()).unwrap(), instr);
    }
}

/// Builds a small in-SRAM kernel bench: 4 tiles of width `w`, modulus `q`,
/// with per-tile operand words, and runs `f`.
fn with_kernel_setup(
    w: usize,
    q: u64,
    b_words: &[u64; 4],
    f: impl FnOnce(&Kernels, &mut Controller, &Layout),
) {
    let layout = Layout::new(16, 4 * w, w, 4).unwrap();
    let array = SramArray::new(16, layout.active_cols()).unwrap();
    let mut ctl = Controller::new(array, w).unwrap();
    let kernels = Kernels::new(*layout.rowmap(), q, w);
    let mask = low_mask(w as u32);
    let mut m_row = BitRow::zero(layout.active_cols());
    let mut c_row = BitRow::zero(layout.active_cols());
    let mut b_row = BitRow::zero(layout.active_cols());
    for (t, &bw) in b_words.iter().enumerate() {
        m_row.set_tile_word(t, w, q);
        c_row.set_tile_word(t, w, q.wrapping_neg() & mask);
        b_row.set_tile_word(t, w, bw);
    }
    ctl.load_data_row(layout.rowmap().modulus.index(), m_row);
    ctl.load_data_row(layout.rowmap().comp_modulus.index(), c_row);
    ctl.load_data_row(0, b_row);
    f(&kernels, &mut ctl, &layout);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The in-SRAM constant-multiplier kernel matches the word model in
    /// every tile simultaneously (which also proves tile isolation: each
    /// tile carries different data through shared instructions).
    #[test]
    fn insram_modmul_matches_word_model(
        (w32, q) in (4u32..=16).prop_flat_map(|w| {
            let max = (1u64 << (w - 1)) - 1;
            (Just(w), (3u64..=max.max(3)).prop_map(|q| q | 1))
        }),
        a in any::<u64>(),
        bs in [any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()],
    ) {
        let w = w32 as usize;
        let a = a % q;
        let b_words = [bs[0] % q, bs[1] % q, bs[2] % q, bs[3] % q];
        with_kernel_setup(w, q, &b_words, |kernels, ctl, layout| {
            kernels.modmul_const(ctl, RowAddr(0), a).unwrap();
            kernels.finish_modmul(ctl).unwrap();
            let sum_row = layout.rowmap().sum.index();
            for (t, &b) in b_words.iter().enumerate() {
                let got = ctl.peek_row(sum_row).tile_word(t, w);
                let expect = bp_modmul_reduced(a, b, q, w32);
                assert_eq!(got, expect, "tile {t}: a={a} b={b} q={q} w={w}");
            }
        });
    }

    /// The in-SRAM add/sub kernels compute modular sums and differences.
    #[test]
    fn insram_addsub_matches_reference(
        (w32, q) in (4u32..=16).prop_flat_map(|w| {
            let max = (1u64 << (w - 1)) - 1;
            (Just(w), (3u64..=max.max(3)).prop_map(|q| q | 1))
        }),
        xs in [any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()],
        ys in [any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()],
    ) {
        let w = w32 as usize;
        let x_words = [xs[0] % q, xs[1] % q, xs[2] % q, xs[3] % q];
        let y_words = [ys[0] % q, ys[1] % q, ys[2] % q, ys[3] % q];
        with_kernel_setup(w, q, &x_words, |kernels, ctl, _layout| {
            let mut y_row = BitRow::zero(ctl.cols());
            for (t, &yw) in y_words.iter().enumerate() {
                y_row.set_tile_word(t, w, yw);
            }
            ctl.load_data_row(1, y_row);
            kernels.add_mod(ctl, RowAddr(2), RowAddr(0), RowAddr(1), None).unwrap();
            kernels.sub_mod(ctl, RowAddr(3), RowAddr(0), RowAddr(1), None).unwrap();
            for t in 0..4 {
                assert_eq!(
                    ctl.peek_row(2).tile_word(t, w),
                    add_mod(x_words[t], y_words[t], q),
                    "add tile {t} q={q} w={w}"
                );
                assert_eq!(
                    ctl.peek_row(3).tile_word(t, w),
                    sub_mod(x_words[t], y_words[t], q),
                    "sub tile {t} q={q} w={w}"
                );
            }
        });
    }

    /// Modular identities hold for the reference layer (sanity anchor).
    #[test]
    fn reference_ring_identities(q in (3u64..=1_000_000).prop_map(|q| q | 1), a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a % q, b % q);
        prop_assert_eq!(add_mod(sub_mod(a, b, q), b, q), a);
        prop_assert_eq!(reduce_once(add_mod(a, b, q), q), add_mod(a, b, q));
        prop_assert_eq!(mul_mod(a, b, q), mul_mod(b, a, q));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scrubber probes are invisible to tenants: interleaving scrub
    /// passes with batches changes no tenant-visible result (probes run
    /// on probe-owned operand slots), and probes replay the warmed
    /// program cache — they never recompile or replace cached program
    /// objects.
    #[test]
    fn scrub_probes_are_tenant_invisible(
        seed in any::<u64>(),
        shards in 1usize..=3,
        scrubs in 1usize..=3,
    ) {
        let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap();
        let mut x = seed | 1;
        let batch: Vec<Vec<u64>> = (0..6)
            .map(|_| {
                (0..8)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x % 97
                    })
                    .collect()
            })
            .collect();

        let mut control = ShardedBpNtt::new(&cfg, shards).unwrap();
        let mut scrubbed = ShardedBpNtt::new(&cfg, shards).unwrap();
        scrubbed.set_health_options(HealthOptions::aggressive());
        if shards > 1 {
            // Bench one shard so the scrubber exercises the quarantine
            // probe path; single-shard engines are patrol-probed.
            scrubbed.quarantine(shards - 1);
        }

        let mut probes_run = 0u64;
        let mut warm = None;
        for round in 0..3 {
            for _ in 0..scrubs {
                // The aggressive probe/patrol intervals are 1 ms / 5 ms
                // of wall clock; give each pass a chance to come due.
                std::thread::sleep(std::time::Duration::from_millis(2));
                probes_run += scrubbed.scrub_pass().probes_run;
            }
            let expect = control.forward_batch(&batch).unwrap();
            let got = scrubbed.forward_batch(&batch).unwrap();
            prop_assert_eq!(
                &got, &expect,
                "round {}: scrub probes leaked into tenant-visible results", round
            );
            if round == 0 {
                warm = Some((scrubbed.cached_programs(), scrubbed.program_identities(0)));
            }
        }
        prop_assert!(probes_run >= 1, "vacuous run: no probe ever came due");
        let (warm_count, warm_ids) = warm.unwrap();
        prop_assert_eq!(
            scrubbed.cached_programs(), warm_count,
            "scrub probes changed the number of cached programs"
        );
        prop_assert_eq!(
            scrubbed.program_identities(0), warm_ids,
            "scrub probes replaced cached program objects"
        );
    }
}
