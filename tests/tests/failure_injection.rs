//! Failure injection: every public construction and loading path rejects
//! invalid input with a specific, typed error.

use bpntt_core::{BpNtt, BpNttConfig, BpNttError, Layout};
use bpntt_modmath::ModMathError;
use bpntt_ntt::{NttError, NttParams};
use bpntt_sram::{Controller, Instruction, RowAddr, SramArray, SramError};

#[test]
fn modmath_rejections() {
    use bpntt_modmath::montgomery::MontCtx;
    assert!(matches!(
        MontCtx::new(10, 8),
        Err(ModMathError::EvenModulus { .. })
    ));
    assert!(matches!(
        MontCtx::new(1, 8),
        Err(ModMathError::ModulusTooSmall { .. })
    ));
    assert!(matches!(
        MontCtx::new(511, 8),
        Err(ModMathError::ModulusTooWide { .. })
    ));
    assert!(matches!(
        bpntt_modmath::zq::inv_mod(4, 8),
        Err(ModMathError::NotInvertible { .. })
    ));
    assert!(matches!(
        bpntt_modmath::roots::primitive_nth_root(3, 17),
        Err(ModMathError::NoRootOfUnity { .. })
    ));
}

#[test]
fn ntt_rejections() {
    assert!(matches!(
        NttParams::new(100, 12_289),
        Err(NttError::InvalidLength { .. })
    ));
    assert!(matches!(
        NttParams::new(256, 12_288),
        Err(NttError::ModulusNotPrime { .. })
    ));
    assert!(matches!(
        NttParams::new(256, 3329),
        Err(NttError::UnsupportedModulus { .. })
    ));
    let p = NttParams::new(8, 97).unwrap();
    let tw = bpntt_ntt::TwiddleTable::new(&p);
    let mut wrong_len = vec![0u64; 4];
    assert!(matches!(
        bpntt_ntt::forward::ntt_in_place(&p, &tw, &mut wrong_len),
        Err(NttError::LengthMismatch { .. })
    ));
    let mut unreduced = vec![97u64; 8];
    assert!(matches!(
        bpntt_ntt::forward::ntt_in_place(&p, &tw, &mut unreduced),
        Err(NttError::UnreducedCoefficient { .. })
    ));
}

#[test]
fn sram_rejections() {
    assert!(matches!(
        SramArray::new(0, 64),
        Err(SramError::BadGeometry { .. })
    ));
    assert!(matches!(
        SramArray::new(2048, 64),
        Err(SramError::BadGeometry { .. })
    ));
    let arr = SramArray::new(8, 64).unwrap();
    assert!(matches!(
        Controller::new(arr, 48),
        Err(SramError::BadTileWidth { .. })
    ));

    let mut ctl = Controller::new(SramArray::new(8, 64).unwrap(), 16).unwrap();
    assert!(matches!(
        ctl.execute(&Instruction::CheckZero { src: RowAddr(8) }),
        Err(SramError::RowOutOfRange { .. })
    ));
    assert!(matches!(
        ctl.execute(&Instruction::Check {
            src: RowAddr(0),
            bit: 16
        }),
        Err(SramError::CheckBitOutOfRange { .. })
    ));
    // Unknown opcodes and malformed words fail to decode.
    assert!(matches!(
        Instruction::decode(0x7),
        Err(SramError::BadOpcode { .. })
    ));
    assert!(matches!(
        Instruction::decode(0xF),
        Err(SramError::BadOpcode { .. })
    ));
}

#[test]
fn config_rejections() {
    let p14 = NttParams::dac_256_14bit().unwrap();
    assert!(matches!(
        BpNttConfig::new(262, 256, 1, p14.clone()),
        Err(BpNttError::InvalidBitwidth { .. })
    ));
    assert!(matches!(
        BpNttConfig::new(262, 8, 16, p14.clone()),
        Err(BpNttError::ArrayTooNarrow { .. })
    ));
    assert!(matches!(
        BpNttConfig::new(262, 256, 14, p14.clone()),
        Err(BpNttError::NoHeadroom { .. })
    ));
    // 4096-point at 16 bits does not fit a 262×256 array.
    assert!(matches!(
        NttParams::new(4096, 40_961)
            .map_err(BpNttError::from)
            .and_then(|p| BpNttConfig::new(262, 256, 17, p)),
        Err(BpNttError::CapacityExceeded { .. })
    ));
}

#[test]
fn engine_load_rejections() {
    let cfg = BpNttConfig::new(16, 32, 8, NttParams::new(8, 97).unwrap()).unwrap();
    let mut acc = BpNtt::new(cfg).unwrap();
    assert!(matches!(
        acc.load_batch(&vec![vec![0u64; 8]; 99]),
        Err(BpNttError::BatchTooLarge { .. })
    ));
    assert!(matches!(
        acc.load_batch(&[vec![0u64; 9]]),
        Err(BpNttError::WrongLength { .. })
    ));
    assert!(matches!(
        acc.load_batch(&[vec![1000u64; 8]]),
        Err(BpNttError::Unreduced { .. })
    ));
    // Polynomial multiplication requires room for both operands.
    let a = vec![vec![0u64; 8]];
    assert!(matches!(
        acc.polymul(&a, &a),
        Err(BpNttError::CapacityExceeded { .. })
    ));
}

#[test]
fn layout_capacity_rejections() {
    assert!(matches!(
        Layout::new(256, 256, 16, 4096),
        Err(BpNttError::CapacityExceeded { .. })
    ));
    assert!(matches!(
        Layout::new(256, 8, 16, 8),
        Err(BpNttError::ArrayTooNarrow { .. })
    ));
}

#[test]
fn errors_format_and_chain() {
    use std::error::Error;
    let e = BpNttError::from(SramError::BadOpcode { opcode: 7 });
    assert!(e.source().is_some());
    assert!(!e.to_string().is_empty());
    let e = BpNttError::from(NttError::InvalidLength { n: 3 });
    assert!(e.to_string().contains('3'));
}
