//! Failure injection, in two halves:
//!
//! 1. **Rejection paths** — every public construction and loading path
//!    rejects invalid input with a specific, typed error.
//! 2. **Fault drills** — seeded SRAM [`FaultPlan`]s (transient bit
//!    flips, stuck-at cells, dead rows, hard faults) run against every
//!    execution mode with output verification armed, exercising the
//!    detect → retry → quarantine → degrade recovery ladder end to end.
//!    The drills' core invariant: **no corrupted polynomial is ever
//!    returned as verified** — a run either produces the
//!    reference-exact result or fails with a typed error.

use bpntt_core::{
    BpNtt, BpNttConfig, BpNttError, ExecMode, FaultPlan, Layout, PipelineSpec, RecoveryOptions,
    ShardedBpNtt, VerifyPolicy,
};
use bpntt_modmath::ModMathError;
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::{NttError, NttParams, Polynomial, TwiddleTable};
use bpntt_sram::{Controller, Instruction, RowAddr, SramArray, SramError};
use proptest::prelude::*;

#[test]
fn modmath_rejections() {
    use bpntt_modmath::montgomery::MontCtx;
    assert!(matches!(
        MontCtx::new(10, 8),
        Err(ModMathError::EvenModulus { .. })
    ));
    assert!(matches!(
        MontCtx::new(1, 8),
        Err(ModMathError::ModulusTooSmall { .. })
    ));
    assert!(matches!(
        MontCtx::new(511, 8),
        Err(ModMathError::ModulusTooWide { .. })
    ));
    assert!(matches!(
        bpntt_modmath::zq::inv_mod(4, 8),
        Err(ModMathError::NotInvertible { .. })
    ));
    assert!(matches!(
        bpntt_modmath::roots::primitive_nth_root(3, 17),
        Err(ModMathError::NoRootOfUnity { .. })
    ));
}

#[test]
fn ntt_rejections() {
    assert!(matches!(
        NttParams::new(100, 12_289),
        Err(NttError::InvalidLength { .. })
    ));
    assert!(matches!(
        NttParams::new(256, 12_288),
        Err(NttError::ModulusNotPrime { .. })
    ));
    assert!(matches!(
        NttParams::new(256, 3329),
        Err(NttError::UnsupportedModulus { .. })
    ));
    let p = NttParams::new(8, 97).unwrap();
    let tw = bpntt_ntt::TwiddleTable::new(&p);
    let mut wrong_len = vec![0u64; 4];
    assert!(matches!(
        bpntt_ntt::forward::ntt_in_place(&p, &tw, &mut wrong_len),
        Err(NttError::LengthMismatch { .. })
    ));
    let mut unreduced = vec![97u64; 8];
    assert!(matches!(
        bpntt_ntt::forward::ntt_in_place(&p, &tw, &mut unreduced),
        Err(NttError::UnreducedCoefficient { .. })
    ));
}

#[test]
fn sram_rejections() {
    assert!(matches!(
        SramArray::new(0, 64),
        Err(SramError::BadGeometry { .. })
    ));
    assert!(matches!(
        SramArray::new(2048, 64),
        Err(SramError::BadGeometry { .. })
    ));
    let arr = SramArray::new(8, 64).unwrap();
    assert!(matches!(
        Controller::new(arr, 48),
        Err(SramError::BadTileWidth { .. })
    ));

    let mut ctl = Controller::new(SramArray::new(8, 64).unwrap(), 16).unwrap();
    assert!(matches!(
        ctl.execute(&Instruction::CheckZero { src: RowAddr(8) }),
        Err(SramError::RowOutOfRange { .. })
    ));
    assert!(matches!(
        ctl.execute(&Instruction::Check {
            src: RowAddr(0),
            bit: 16
        }),
        Err(SramError::CheckBitOutOfRange { .. })
    ));
    // Unknown opcodes and malformed words fail to decode.
    assert!(matches!(
        Instruction::decode(0x7),
        Err(SramError::BadOpcode { .. })
    ));
    assert!(matches!(
        Instruction::decode(0xF),
        Err(SramError::BadOpcode { .. })
    ));
}

#[test]
fn config_rejections() {
    let p14 = NttParams::dac_256_14bit().unwrap();
    assert!(matches!(
        BpNttConfig::new(262, 256, 1, p14.clone()),
        Err(BpNttError::InvalidBitwidth { .. })
    ));
    assert!(matches!(
        BpNttConfig::new(262, 8, 16, p14.clone()),
        Err(BpNttError::ArrayTooNarrow { .. })
    ));
    assert!(matches!(
        BpNttConfig::new(262, 256, 14, p14.clone()),
        Err(BpNttError::NoHeadroom { .. })
    ));
    // 4096-point at 16 bits does not fit a 262×256 array.
    assert!(matches!(
        NttParams::new(4096, 40_961)
            .map_err(BpNttError::from)
            .and_then(|p| BpNttConfig::new(262, 256, 17, p)),
        Err(BpNttError::CapacityExceeded { .. })
    ));
}

#[test]
fn engine_load_rejections() {
    let cfg = BpNttConfig::new(16, 32, 8, NttParams::new(8, 97).unwrap()).unwrap();
    let mut acc = BpNtt::new(cfg).unwrap();
    assert!(matches!(
        acc.load_batch(&vec![vec![0u64; 8]; 99]),
        Err(BpNttError::BatchTooLarge { .. })
    ));
    assert!(matches!(
        acc.load_batch(&[vec![0u64; 9]]),
        Err(BpNttError::WrongLength { .. })
    ));
    assert!(matches!(
        acc.load_batch(&[vec![1000u64; 8]]),
        Err(BpNttError::Unreduced { .. })
    ));
    // Polynomial multiplication requires room for both operands.
    let a = vec![vec![0u64; 8]];
    assert!(matches!(
        acc.polymul(&a, &a),
        Err(BpNttError::CapacityExceeded { .. })
    ));
}

#[test]
fn layout_capacity_rejections() {
    assert!(matches!(
        Layout::new(256, 256, 16, 4096),
        Err(BpNttError::CapacityExceeded { .. })
    ));
    assert!(matches!(
        Layout::new(256, 8, 16, 8),
        Err(BpNttError::ArrayTooNarrow { .. })
    ));
}

#[test]
fn errors_format_and_chain() {
    use std::error::Error;
    let e = BpNttError::from(SramError::BadOpcode { opcode: 7 });
    assert!(e.source().is_some());
    assert!(!e.to_string().is_empty());
    let e = BpNttError::from(NttError::InvalidLength { n: 3 });
    assert!(e.to_string().contains('3'));
}

// ---------------------------------------------------------------------
// Fault drills
// ---------------------------------------------------------------------

const MODES: [ExecMode; 3] = [ExecMode::Replay, ExecMode::FusedEmit, ExecMode::Generic];

/// 8-point mod-97 config with polymul capacity.
fn drill_config() -> BpNttConfig {
    BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
}

fn pseudo(seed: u64) -> Vec<u64> {
    Polynomial::pseudo_random(&NttParams::new(8, 97).unwrap(), seed).into_coeffs()
}

fn forward_reference(p: &[u64]) -> Vec<u64> {
    let params = NttParams::new(8, 97).unwrap();
    let tw = TwiddleTable::new(&params);
    let mut v = p.to_vec();
    ntt_in_place(&params, &tw, &mut v).unwrap();
    v
}

/// Every fault mode × every execution mode on a single verified engine:
/// a run either returns the reference-exact spectra or fails with
/// `IntegrityFailure` — corrupted output is never returned as verified.
/// The dead-row plan (certain corruption of pseudo-random data) must
/// additionally be *detected* at least once per mode.
#[test]
fn fault_drill_no_corrupted_output_escapes_any_mode() {
    let plans: [(&str, FaultPlan); 3] = [
        ("transient", FaultPlan::seeded(3).transient_rate(5e-4)),
        ("stuck-at", FaultPlan::seeded(4).stuck_at(1, 3, true)),
        ("dead-row", FaultPlan::seeded(5).dead_row(2)),
    ];
    let polys: Vec<Vec<u64>> = (1u64..=4).map(pseudo).collect();
    let expect: Vec<Vec<u64>> = polys.iter().map(|p| forward_reference(p)).collect();
    for mode in MODES {
        for (name, plan) in &plans {
            let mut acc = BpNtt::new(drill_config()).unwrap();
            acc.set_verify_policy(VerifyPolicy::Full);
            acc.install_fault_plan(plan.clone());
            let mut detected = 0u32;
            for round in 0..6 {
                match acc.run_pipeline(&PipelineSpec::forward_ntt(), mode, &[&polys]) {
                    Ok(out) => assert_eq!(
                        out, expect,
                        "corrupted output returned verified ({name}, {mode:?}, round {round})"
                    ),
                    Err(BpNttError::IntegrityFailure { .. }) => detected += 1,
                    Err(e) => panic!("unexpected error class ({name}, {mode:?}): {e}"),
                }
            }
            if *name == "dead-row" {
                assert!(detected > 0, "dead row escaped detection ({mode:?})");
            }
        }
    }
}

/// Transient chaos against the full recovery ladder, per execution
/// mode: every wave completes with reference-exact results, and the
/// ladder's counters show detection and retries actually happened.
#[test]
fn fault_drill_ladder_recovers_transients_every_mode() {
    let polys: Vec<Vec<u64>> = (10u64..18).map(pseudo).collect();
    let expect: Vec<Vec<u64>> = polys.iter().map(|p| forward_reference(p)).collect();
    for mode in MODES {
        let mut eng = ShardedBpNtt::new(&drill_config(), 2).unwrap();
        eng.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 3,
            software_fallback: true,
        });
        eng.install_fault_plan(&FaultPlan::seeded(11).transient_rate(1e-3));
        for round in 0..6 {
            let out = eng
                .run_pipeline_batch(&PipelineSpec::forward_ntt(), mode, &[&polys])
                .unwrap_or_else(|e| panic!("ladder failed ({mode:?}, round {round}): {e}"));
            assert_eq!(
                out, expect,
                "escape past the ladder ({mode:?}, round {round})"
            );
        }
        let totals = eng.recovery_totals();
        assert!(
            totals.faults_detected > 0,
            "chaos rate injected nothing ({mode:?}); raise the rate"
        );
        assert!(totals.retries > 0, "detections never retried ({mode:?})");
    }
}

/// A persistent dead row exhausts retries, quarantines the owning
/// shards, and degrades to the software reference — while every wave
/// still completes correctly. Clearing the plan and lifting quarantine
/// restores fault-free operation.
#[test]
fn fault_drill_persistent_fault_quarantines_then_recovers() {
    let polys: Vec<Vec<u64>> = (20u64..28).map(pseudo).collect();
    let expect: Vec<Vec<u64>> = polys.iter().map(|p| forward_reference(p)).collect();
    for mode in MODES {
        let mut eng = ShardedBpNtt::new(&drill_config(), 2).unwrap();
        eng.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 1,
            software_fallback: true,
        });
        eng.install_fault_plan(&FaultPlan::seeded(21).dead_row(2));
        let out = eng
            .run_pipeline_batch(&PipelineSpec::forward_ntt(), mode, &[&polys])
            .unwrap();
        assert_eq!(
            out, expect,
            "degraded wave still answers correctly ({mode:?})"
        );
        let wave = eng.last_recovery();
        assert!(wave.degraded, "persistent fault did not degrade ({mode:?})");
        assert!(wave.fallback_polys > 0, "no software fallback ({mode:?})");
        assert!(
            !eng.quarantined().is_empty(),
            "no shard quarantined ({mode:?})"
        );
        // Heal: remove the plan, readmit the shards, run clean.
        let stats = eng.clear_fault_plans();
        assert!(stats.persistent_imposications > 0, "dead row never imposed");
        eng.lift_all_quarantines();
        let out = eng
            .run_pipeline_batch(&PipelineSpec::forward_ntt(), mode, &[&polys])
            .unwrap();
        assert_eq!(out, expect);
        let wave = eng.last_recovery();
        assert!(!wave.degraded, "healed engine still degraded ({mode:?})");
        assert_eq!(wave.fallback_polys, 0);
    }
}

/// SpotCheck (not just Full) stops chaos escapes: with a transient rate
/// and the cheap O(N)-per-point policy, every completed wave is still
/// reference-exact.
#[test]
fn fault_drill_spotcheck_stops_escapes_under_chaos() {
    let polys: Vec<Vec<u64>> = (30u64..38).map(pseudo).collect();
    let expect: Vec<Vec<u64>> = polys.iter().map(|p| forward_reference(p)).collect();
    let mut eng = ShardedBpNtt::new(&drill_config(), 2).unwrap();
    eng.set_recovery(RecoveryOptions {
        verify: VerifyPolicy::SpotCheck { points: 2 },
        retry_budget: 3,
        software_fallback: true,
    });
    eng.install_fault_plan(&FaultPlan::seeded(31).transient_rate(1e-3));
    for round in 0..8 {
        let out = eng
            .run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[&polys])
            .unwrap();
        assert_eq!(
            out, expect,
            "SpotCheck let a corrupted poly escape (round {round})"
        );
    }
    assert!(
        eng.recovery_totals().faults_detected > 0,
        "chaos was a no-op"
    );
}

/// A hard fault (worker panic) is contained: the wave that hits it
/// either recovers through the ladder or fails typed, and the engine
/// survives to serve the next wave.
#[test]
fn fault_drill_hard_fault_is_contained_and_typed() {
    let polys: Vec<Vec<u64>> = (40u64..44).map(pseudo).collect();
    let expect: Vec<Vec<u64>> = polys.iter().map(|p| forward_reference(p)).collect();
    // Ladder off: the panic surfaces as WorkerPanicked, not a crash.
    let mut bare = ShardedBpNtt::new(&drill_config(), 2).unwrap();
    bare.install_fault_plan(&FaultPlan::seeded(41).hard_fault_at(40));
    let r = bare.run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[&polys]);
    assert!(
        matches!(r, Err(BpNttError::WorkerPanicked { .. })),
        "expected WorkerPanicked, got {r:?}"
    );
    // The hard fault is one-shot: the engine answers the next wave.
    let out = bare
        .run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[&polys])
        .unwrap();
    assert_eq!(out, expect);

    // Ladder on: the same fault is absorbed by retry within one wave.
    let mut laddered = ShardedBpNtt::new(&drill_config(), 2).unwrap();
    laddered.set_recovery(RecoveryOptions {
        verify: VerifyPolicy::Full,
        retry_budget: 2,
        software_fallback: true,
    });
    laddered.install_fault_plan(&FaultPlan::seeded(41).hard_fault_at(40));
    let out = laddered
        .run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[&polys])
        .unwrap();
    assert_eq!(out, expect);
    assert!(
        laddered.recovery_totals().worker_panics > 0,
        "panic not contained in-ladder"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SpotCheck never false-positives on clean (fault-free) runs: for
    /// arbitrary inputs and point counts, verified forward, roundtrip,
    /// and polymul pipelines all pass.
    #[test]
    fn spotcheck_clean_runs_never_false_positive(seed in any::<u64>(), points in 1usize..4) {
        let mut acc = BpNtt::new(drill_config()).unwrap();
        acc.set_verify_policy(VerifyPolicy::SpotCheck { points });
        let a: Vec<Vec<u64>> = (0u64..3).map(|i| pseudo(seed ^ (i + 1))).collect();
        let b: Vec<Vec<u64>> = (0u64..3).map(|i| pseudo(seed ^ (i + 11))).collect();
        acc.run_pipeline(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[&a])
            .expect("clean forward flagged");
        acc.run_pipeline(&PipelineSpec::roundtrip(), ExecMode::Replay, &[&a])
            .expect("clean roundtrip flagged");
        acc.run_pipeline(&PipelineSpec::polymul(), ExecMode::Replay, &[&a, &b])
            .expect("clean polymul flagged");
    }
}
