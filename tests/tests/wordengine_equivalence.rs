//! Property tests for the vectorized word-engine, the epilogue superop
//! fusion, and the fused emission path: replay through the fused
//! superops *and* fused emission (`ExecMode::FusedEmit`, which routes the
//! generated stream through the same executors) — on the SIMD path *and*
//! on the forced-scalar fallback — must be indistinguishable from
//! strictly per-instruction emission (`ExecMode::Generic`), and
//! the two kernel paths must be bit-identical to each other. Coverage
//! spans the Kyber-class (7681), Dilithium (8 380 417), and HE-level
//! (1 073 738 753) parameter sets, column counts whose storage word
//! counts are *not* chunk-aligned (1, 2, 3, and 5 words before padding),
//! and the wide HE-batch geometries (320/512/768/1024 columns — 2-, 3-,
//! and 4-chunk rows), which exercises every register-resident chunk
//! count of the multiplier-chain and resolution-loop fast paths.
//!
//! The kernel dispatch is process-wide, so every test that toggles it
//! serializes on one mutex. Toggling is safe by construction — both paths
//! are bit-identical — the lock only makes each test's choice observable.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use bpntt_core::{BpNtt, BpNttConfig, ExecMode};
use bpntt_ntt::NttParams;

static DISPATCH: Mutex<()> = Mutex::new(());

/// Locks the dispatch mutex and pins the requested kernel path.
fn pin_dispatch(scalar: bool) -> MutexGuard<'static, ()> {
    let guard = DISPATCH.lock().unwrap_or_else(|e| e.into_inner());
    bpntt_sram::force_scalar(scalar);
    guard
}

/// The three cryptographic parameter sets at the paper's 256-column
/// geometry.
fn crypto_config(idx: usize) -> BpNttConfig {
    match idx {
        0 => BpNttConfig::paper_256pt_14bit().unwrap(),
        1 => BpNttConfig::new(262, 256, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap(),
        _ => BpNttConfig::new(262, 256, 31, NttParams::new(256, 1_073_738_753).unwrap()).unwrap(),
    }
}

/// Dilithium configs whose row storage is 1, 2, 3, and 5 words before
/// chunk padding — none of them a whole number of chunks.
fn nonaligned_config(cols: usize) -> BpNttConfig {
    BpNttConfig::new(262, cols, 24, NttParams::new(256, 8_380_417).unwrap()).unwrap()
}

const NONALIGNED_COLS: [usize; 4] = [48, 96, 144, 312];

/// Wide HE-batch geometries: 2-chunk (320 → padded, 512), 3-chunk (768),
/// and 4-chunk (1024) rows — every multi-chunk register-resident variant.
const WIDE_COLS: [usize; 4] = [320, 512, 768, 1024];

fn pseudo_batch(cfg: &BpNttConfig, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    let n = cfg.params().n();
    let q = cfg.params().modulus();
    let mut x = seed | 1;
    (0..lanes)
        .map(|_| {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect()
        })
        .collect()
}

/// Runs forward (+ optionally inverse) three ways on identical data —
/// compiled-program replay, fused emission, and strictly per-instruction
/// emission — and asserts every physical row and the full `Stats`
/// (including the f64 energy accumulator) match bit for bit across all
/// three.
fn assert_replay_equivalent(cfg: &BpNttConfig, seed: u64, inverse_too: bool) {
    let lanes = cfg.layout().lanes();
    let batch = 1 + (seed as usize) % lanes;
    let polys = pseudo_batch(cfg, batch, seed);

    let mut replayed = BpNtt::new(cfg.clone()).unwrap();
    replayed.load_batch(&polys).unwrap();
    replayed.forward().unwrap();
    if inverse_too {
        replayed.inverse().unwrap();
    }

    let mut fused = BpNtt::new(cfg.clone()).unwrap();
    fused.load_batch(&polys).unwrap();
    fused.forward_mode(ExecMode::FusedEmit).unwrap();
    if inverse_too {
        fused.inverse_mode(ExecMode::FusedEmit).unwrap();
    }

    let mut generic = BpNtt::new(cfg.clone()).unwrap();
    generic.load_batch(&polys).unwrap();
    generic.forward_mode(ExecMode::Generic).unwrap();
    if inverse_too {
        generic.inverse_mode(ExecMode::Generic).unwrap();
    }

    for r in 0..cfg.rows() {
        assert_eq!(
            replayed.peek_row(r),
            generic.peek_row(r),
            "replay row {r} diverged from generic emission (cols {}, seed {seed})",
            cfg.layout().active_cols()
        );
        assert_eq!(
            fused.peek_row(r),
            generic.peek_row(r),
            "fused-emission row {r} diverged from generic emission (cols {}, seed {seed})",
            cfg.layout().active_cols()
        );
    }
    let (rs, es, gs) = (*replayed.stats(), *fused.stats(), *generic.stats());
    for (name, s) in [("replay", rs), ("fused emission", es)] {
        assert_eq!(s.cycles, gs.cycles, "{name} cycles");
        assert_eq!(s.counts, gs.counts, "{name} counts");
        assert_eq!(s.row_loads, gs.row_loads, "{name} row loads");
        assert_eq!(
            s.energy_pj.to_bits(),
            gs.energy_pj.to_bits(),
            "{name} energy accumulator"
        );
    }
}

/// Runs one full replay roundtrip and returns every row image plus stats.
fn replay_snapshot(cfg: &BpNttConfig, seed: u64) -> (Vec<bpntt_sram::BitRow>, bpntt_sram::Stats) {
    let lanes = cfg.layout().lanes();
    let polys = pseudo_batch(cfg, lanes, seed);
    let mut acc = BpNtt::new(cfg.clone()).unwrap();
    acc.load_batch(&polys).unwrap();
    acc.forward().unwrap();
    acc.inverse().unwrap();
    let rows = (0..cfg.rows()).map(|r| acc.peek_row(r).clone()).collect();
    (rows, *acc.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Fused epilogue superops + scalar kernels ≡ emission, all three
    /// crypto parameter sets.
    #[test]
    fn scalar_replay_equivalent_on_crypto_sets(seed in any::<u64>()) {
        let _guard = pin_dispatch(true);
        for idx in 0..3 {
            assert_replay_equivalent(&crypto_config(idx), seed, idx == 1);
        }
        bpntt_sram::force_scalar(false);
    }

    /// Fused epilogue superops + SIMD kernels (where the host supports
    /// them) ≡ emission, all three crypto parameter sets.
    #[test]
    fn simd_replay_equivalent_on_crypto_sets(seed in any::<u64>()) {
        let _guard = pin_dispatch(false);
        for idx in 0..3 {
            assert_replay_equivalent(&crypto_config(idx), seed, idx == 1);
        }
    }

    /// Non-chunk-aligned storage widths (1, 2, 3, 5 words) stay
    /// equivalent on both kernel paths — the multi-chunk carry chains and
    /// the padding invariants.
    #[test]
    fn nonaligned_cols_replay_equivalent(seed in any::<u64>()) {
        for scalar in [false, true] {
            let _guard = pin_dispatch(scalar);
            for cols in NONALIGNED_COLS {
                assert_replay_equivalent(&nonaligned_config(cols), seed, cols == 96);
            }
            bpntt_sram::force_scalar(false);
        }
    }

    /// Wide HE-batch geometries (2-/3-/4-chunk rows) stay equivalent on
    /// both kernel paths — the multi-chunk register-resident chains and
    /// loops against the per-step scalar reference, with `Stats`
    /// (including the f64 energy order) pinned bit for bit.
    #[test]
    fn wide_cols_replay_equivalent(seed in any::<u64>()) {
        for scalar in [false, true] {
            let _guard = pin_dispatch(scalar);
            for cols in WIDE_COLS {
                assert_replay_equivalent(&nonaligned_config(cols), seed, cols == 512);
            }
            bpntt_sram::force_scalar(false);
        }
    }
}

/// The register-resident fast paths actually fire — on the paper
/// geometry *and* the wide HE-batch geometries, via replay *and* via
/// fused emission. This is the coverage telemetry's reason to exist: a
/// dispatch or matcher regression turns these counters to zero long
/// before anyone notices a wall-clock mystery.
#[test]
fn resident_fast_paths_fire_on_wide_geometries() {
    let _guard = pin_dispatch(false);
    if !bpntt_sram::simd_active() {
        eprintln!("no SIMD on this host; skipping coverage assertion");
        return;
    }
    for cols in [256usize, 512, 1024] {
        let cfg = nonaligned_config(cols);
        let polys = pseudo_batch(&cfg, 1, 42);
        let mut acc = BpNtt::new(cfg).unwrap();
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        acc.reset_stats();
        acc.forward().unwrap();
        let replay = *acc.fastpath_stats();
        assert!(replay.chains_resident > 0, "cols={cols}: replay chains");
        assert!(
            replay.resolve_loops_resident > 0 && replay.borrow_loops_resident > 0,
            "cols={cols}: replay loops"
        );
        assert!(replay.superops_fused > 0, "cols={cols}: replay superops");
        acc.reset_stats();
        acc.forward_mode(ExecMode::FusedEmit).unwrap();
        let emit = *acc.fastpath_stats();
        assert_eq!(
            (emit.chains_resident, emit.resolve_loops_resident),
            (replay.chains_resident, replay.resolve_loops_resident),
            "cols={cols}: fused emission covers the same chains and loops"
        );
    }
}

/// The SIMD and forced-scalar paths produce bit-identical rows and
/// bit-identical `Stats` on every parameter set and geometry (trivially
/// true on non-AVX2 hosts, where both pins resolve to the scalar path).
#[test]
fn simd_and_scalar_paths_bit_identical() {
    let configs: Vec<BpNttConfig> = (0..3)
        .map(crypto_config)
        .chain(NONALIGNED_COLS.map(nonaligned_config))
        .chain(WIDE_COLS.map(nonaligned_config))
        .collect();
    for (i, cfg) in configs.iter().enumerate() {
        let seed = 1000 + i as u64;
        let scalar = {
            let _guard = pin_dispatch(true);
            let snap = replay_snapshot(cfg, seed);
            bpntt_sram::force_scalar(false);
            snap
        };
        let simd = {
            let _guard = pin_dispatch(false);
            replay_snapshot(cfg, seed)
        };
        assert_eq!(scalar.0, simd.0, "rows diverged (config {i})");
        assert_eq!(scalar.1.cycles, simd.1.cycles);
        assert_eq!(scalar.1.counts, simd.1.counts);
        assert_eq!(
            scalar.1.energy_pj.to_bits(),
            simd.1.energy_pj.to_bits(),
            "energy accumulator diverged (config {i})"
        );
    }
}
