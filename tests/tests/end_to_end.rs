//! End-to-end integration: the in-SRAM accelerator against the software
//! reference across parameter sets, layouts, and pipelines.

use bpntt_core::{BpNtt, BpNttConfig};
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{forward, inverse, NttParams, Polynomial, TwiddleTable};

fn batch(params: &NttParams, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
    (0..lanes as u64)
        .map(|s| Polynomial::pseudo_random(params, seed + s).into_coeffs())
        .collect()
}

/// Runs forward on the accelerator and compares every lane to the
/// reference transform.
fn assert_forward_matches(rows: usize, cols: usize, bw: usize, params: NttParams, seed: u64) {
    let cfg = BpNttConfig::new(rows, cols, bw, params.clone()).expect("valid config");
    let lanes = cfg.layout().lanes();
    let mut acc = BpNtt::new(cfg).expect("construct accelerator");
    let polys = batch(&params, lanes, seed);
    acc.load_batch(&polys).unwrap();
    acc.forward().unwrap();
    let got = acc.read_batch(lanes).unwrap();
    let tw = TwiddleTable::new(&params);
    for (lane, p) in polys.iter().enumerate() {
        let mut expect = p.clone();
        forward::ntt_in_place(&params, &tw, &mut expect).unwrap();
        assert_eq!(
            got[lane],
            expect,
            "lane {lane} at n={} q={}",
            params.n(),
            params.modulus()
        );
    }
}

#[test]
fn forward_matches_reference_small_sets() {
    assert_forward_matches(16, 32, 8, NttParams::new(8, 97).unwrap(), 1);
    assert_forward_matches(40, 64, 10, NttParams::new(32, 449).unwrap(), 2); // 449 ≡ 1 (mod 64)
    assert_forward_matches(70, 128, 14, NttParams::new(64, 7681).unwrap(), 3);
}

#[test]
fn forward_matches_reference_paper_point() {
    // The full Table I design point: 16 lanes × 256-point, 16-bit.
    assert_forward_matches(262, 256, 16, NttParams::dac_256_14bit().unwrap(), 4);
}

#[test]
fn forward_matches_reference_multi_tile() {
    // 1024-point spanning 8 tiles (2 lanes) — the Fig. 8(b) regime.
    assert_forward_matches(262, 256, 16, NttParams::new(1024, 12_289).unwrap(), 5);
}

#[test]
fn inverse_roundtrip_various_layouts() {
    for (rows, cols, bw, n, q) in [
        (16usize, 32usize, 8usize, 8usize, 97u64),
        (262, 256, 16, 256, 12_289),
        (262, 256, 16, 512, 12_289), // multi-tile
    ] {
        let params = NttParams::new(n, q).unwrap();
        let cfg = BpNttConfig::new(rows, cols, bw, params.clone()).unwrap();
        let lanes = cfg.layout().lanes();
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = batch(&params, lanes, 77);
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        acc.inverse().unwrap();
        assert_eq!(
            acc.read_batch(lanes).unwrap(),
            polys,
            "n={n} on {rows}x{cols}"
        );
    }
}

#[test]
fn accelerator_inverse_matches_reference_inverse() {
    let params = NttParams::new(64, 7681).unwrap();
    let cfg = BpNttConfig::new(70, 128, 14, params.clone()).unwrap();
    let lanes = cfg.layout().lanes();
    let mut acc = BpNtt::new(cfg).unwrap();
    let spectra = batch(&params, lanes, 11);
    acc.load_batch(&spectra).unwrap();
    acc.inverse().unwrap();
    let got = acc.read_batch(lanes).unwrap();
    let tw = TwiddleTable::new(&params);
    for (lane, s) in spectra.iter().enumerate() {
        let mut expect = s.clone();
        inverse::intt_in_place(&params, &tw, &mut expect).unwrap();
        assert_eq!(got[lane], expect, "lane {lane}");
    }
}

#[test]
fn polymul_pipeline_matches_schoolbook() {
    let params = NttParams::new(32, 12_289).unwrap();
    let cfg = BpNttConfig::new(128, 128, 16, params.clone()).unwrap();
    let lanes = cfg.layout().lanes().min(3);
    let mut acc = BpNtt::new(cfg).unwrap();
    let a = batch(&params, lanes, 100);
    let b = batch(&params, lanes, 200);
    let got = acc.polymul(&a, &b).unwrap();
    for lane in 0..lanes {
        let expect = polymul_schoolbook(&params, &a[lane], &b[lane]).unwrap();
        assert_eq!(got[lane], expect, "lane {lane}");
    }
}

#[test]
fn partial_batches_leave_unused_lanes_zero() {
    let params = NttParams::new(8, 97).unwrap();
    let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
    let mut acc = BpNtt::new(cfg).unwrap();
    let polys = batch(&params, 2, 9); // 2 of 4 lanes
    acc.load_batch(&polys).unwrap();
    acc.forward().unwrap();
    let got = acc.read_batch(4).unwrap();
    // NTT of the zero polynomial is zero: unused lanes stay zero.
    assert!(got[2].iter().all(|&c| c == 0));
    assert!(got[3].iter().all(|&c| c == 0));
    let tw = TwiddleTable::new(&params);
    let mut expect = polys[0].clone();
    forward::ntt_in_place(&params, &tw, &mut expect).unwrap();
    assert_eq!(got[0], expect);
}

#[test]
fn stats_scale_with_workload() {
    let params = NttParams::new(64, 7681).unwrap();
    let run = |n_params: &NttParams| {
        let cfg = BpNttConfig::new(262, 256, 14, n_params.clone()).unwrap();
        let lanes = cfg.layout().lanes();
        let mut acc = BpNtt::new(cfg).unwrap();
        acc.load_batch(&batch(n_params, lanes, 3)).unwrap();
        acc.reset_stats();
        acc.forward().unwrap();
        acc.stats().cycles
    };
    let c64 = run(&params);
    let c128 = run(&NttParams::new(128, 7681).unwrap());
    // 128-point does 448 butterflies vs 192: expect slightly more than 2×.
    let ratio = c128 as f64 / c64 as f64;
    assert!(ratio > 2.0 && ratio < 3.5, "cycle ratio {ratio:.2}");
}
