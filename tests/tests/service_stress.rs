//! Concurrent-client stress tests for the request-queue service: N
//! client threads submit interleaved forward and polymul requests, the
//! dispatcher coalesces them into waves over the sharded engines, and
//! every result must be bit-exact against the software NTT reference.
//!
//! The CI matrix runs this file twice — once with the runtime-dispatched
//! SIMD word-engine and once with `BPNTT_FORCE_SCALAR=1` — and
//! `mixed_clients_on_forced_scalar_path` additionally pins the scalar
//! fallback in-process so both kernel paths are exercised regardless of
//! the ambient environment (the two paths are bit-identical by
//! construction, so process-wide toggling is safe).

use std::time::Duration;

use bpntt_core::{
    BpNttConfig, BpNttError, ExecMode, NttService, PipelineRequest, PipelineSpec, ServiceOptions,
    TenantId,
};
use bpntt_ntt::forward::ntt_in_place;
use bpntt_ntt::polymul::polymul_schoolbook;
use bpntt_ntt::{NttParams, Polynomial, TwiddleTable};

fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
    Polynomial::pseudo_random(&NttParams::new(n, q).unwrap(), seed).into_coeffs()
}

/// 8-point mod-97 config with polymul capacity (2·8 + 6 ≤ 32 rows).
fn config8() -> BpNttConfig {
    BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
}

/// 16-point mod-193 config for the second tenant (2·16 + 6 ≤ 44 rows).
fn config16() -> BpNttConfig {
    BpNttConfig::new(44, 64, 9, NttParams::new(16, 193).unwrap()).unwrap()
}

/// Submits `per_client` mixed requests from each of `clients` threads
/// (2:1 forward:polymul) and verifies every ticket against the software
/// reference. Returns the completed-request count.
fn run_mixed_stress(
    service: &NttService,
    tenant: TenantId,
    params: &NttParams,
    clients: u64,
    per_client: u64,
) -> u64 {
    let n = params.n();
    let q = params.modulus();
    let twiddles = TwiddleTable::new(params);
    let mut completed = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            let twiddles = &twiddles;
            handles.push(scope.spawn(move || {
                let mut done = 0u64;
                for r in 0..per_client {
                    let seed = c * 10_000 + r * 17 + 1;
                    if r % 3 == 2 {
                        let a = pseudo(n, q, seed);
                        let b = pseudo(n, q, seed + 7);
                        let ticket = submit_with_retry(|| {
                            service.submit_polymul_as(tenant, a.clone(), b.clone())
                        });
                        let got = ticket.wait().unwrap();
                        let expect = polymul_schoolbook(params, &a, &b).unwrap();
                        assert_eq!(got, expect, "polymul diverged (client {c}, req {r})");
                    } else {
                        let p = pseudo(n, q, seed);
                        let ticket =
                            submit_with_retry(|| service.submit_forward_as(tenant, p.clone()));
                        let got = ticket.wait().unwrap();
                        let mut expect = p.clone();
                        ntt_in_place(params, twiddles, &mut expect).unwrap();
                        assert_eq!(got, expect, "forward diverged (client {c}, req {r})");
                    }
                    done += 1;
                }
                done
            }));
        }
        for h in handles {
            completed += h.join().expect("client thread panicked");
        }
    });
    completed
}

/// Retries a submission through `Overloaded` backpressure (the typed
/// error is the signal to drain and retry, not a failure).
fn submit_with_retry<T>(mut submit: impl FnMut() -> Result<T, BpNttError>) -> T {
    loop {
        match submit() {
            Ok(t) => return t,
            Err(BpNttError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("submission failed: {e}"),
        }
    }
}

#[test]
fn concurrent_mixed_clients_match_reference() {
    let params = NttParams::new(8, 97).unwrap();
    let service = NttService::start(
        &config8(),
        ServiceOptions {
            shards: 2,
            max_queue: 64,
            coalesce_window: Duration::from_millis(2),
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    let tenant = service.default_tenant();
    let completed = run_mixed_stress(&service, tenant, &params, 4, 24);
    assert_eq!(completed, 96);
    let m = service.shutdown();
    assert_eq!(m.completed, 96);
    assert_eq!(m.failed, 0);
    assert!(m.waves >= 1);
    assert!(
        m.waves < m.completed,
        "coalescing must batch requests into fewer waves than requests \
         ({} waves for {} requests)",
        m.waves,
        m.completed
    );
    assert!(m.wave_occupancy > 0.0 && m.wave_occupancy <= 1.0);
    assert!(m.shard_secs_max >= m.shard_secs_p90);
    assert!(m.shard_secs_p90 >= m.shard_secs_p50);
    assert!(m.shard_secs_p50 > 0.0);
}

#[test]
fn mixed_clients_on_forced_scalar_path() {
    // Pin the scalar word-engine in-process; results must stay bit-exact
    // (they are bit-identical to the SIMD path by construction). Restore
    // the *prior* dispatch afterwards — force_scalar(false) ignores
    // BPNTT_FORCE_SCALAR, so unconditionally resetting would silently
    // un-pin the CI scalar leg for concurrently running tests.
    let was_simd = bpntt_sram::simd_active();
    bpntt_sram::force_scalar(true);
    let params = NttParams::new(8, 97).unwrap();
    let service = NttService::start(
        &config8(),
        ServiceOptions {
            shards: 2,
            max_queue: 64,
            coalesce_window: Duration::from_micros(500),
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    let completed = run_mixed_stress(&service, service.default_tenant(), &params, 3, 12);
    bpntt_sram::force_scalar(!was_simd);
    assert_eq!(completed, 36);
    let m = service.shutdown();
    assert_eq!(m.completed, 36);
    assert_eq!(m.failed, 0);
}

#[test]
fn multi_tenant_clients_share_the_program_cache() {
    let params8 = NttParams::new(8, 97).unwrap();
    let params16 = NttParams::new(16, 193).unwrap();
    let service = NttService::start(
        &config8(),
        ServiceOptions {
            shards: 2,
            max_queue: 128,
            coalesce_window: Duration::from_micros(500),
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    let t8 = service.default_tenant();
    let t16 = service.add_tenant(&config16()).unwrap();
    // A third tenant with the default tenant's exact (params, layout)
    // must install cached programs instead of recompiling.
    let t8_clone = service.add_tenant(&config8()).unwrap();

    // Interleave clients of all three tenants.
    std::thread::scope(|scope| {
        let service = &service;
        let params8 = &params8;
        let params16 = &params16;
        scope.spawn(move || run_mixed_stress(service, t8, params8, 2, 12));
        scope.spawn(move || run_mixed_stress(service, t16, params16, 2, 12));
        scope.spawn(move || run_mixed_stress(service, t8_clone, params8, 2, 12));
    });

    let m = service.shutdown();
    assert_eq!(m.completed, 72);
    assert_eq!(m.failed, 0);
    assert_eq!(m.tenants, 3);
    assert_eq!(
        m.program_cache_entries, 2,
        "two distinct (params, layout) keys"
    );
    assert!(
        m.program_cache_hits >= 1,
        "the cloned tenant must hit the cache"
    );
}

#[test]
fn pipeline_requests_coalesce_and_match_reference() {
    // Custom op-graphs through submit_pipeline: concurrent clients run
    // the spectral (NTT-domain-cached) product — pointwise + scaled
    // inverse on host-cached spectra — and a roundtrip graph; every
    // result checks bit-exactly against the software reference.
    let params = NttParams::new(8, 97).unwrap();
    let twiddles = TwiddleTable::new(&params);
    let service = NttService::start(
        &config8(),
        ServiceOptions {
            shards: 2,
            max_queue: 64,
            coalesce_window: Duration::from_micros(500),
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    let spectrum = |p: &[u64]| {
        let mut s = p.to_vec();
        ntt_in_place(&params, &twiddles, &mut s).unwrap();
        s
    };
    std::thread::scope(|scope| {
        for c in 0..3u64 {
            let service = &service;
            let params = &params;
            let spectrum = &spectrum;
            scope.spawn(move || {
                for r in 0..8u64 {
                    let seed = c * 1000 + r * 13 + 1;
                    let a = pseudo(8, 97, seed);
                    let b = pseudo(8, 97, seed + 5);
                    let ticket = submit_with_retry(|| {
                        service.submit_pipeline(PipelineRequest::new(
                            PipelineSpec::polymul_spectral(),
                            vec![spectrum(&a), spectrum(&b)],
                        ))
                    });
                    let expect = polymul_schoolbook(params, &a, &b).unwrap();
                    assert_eq!(ticket.wait().unwrap(), expect, "client {c} req {r}");

                    let p = pseudo(8, 97, seed + 11);
                    let ticket = submit_with_retry(|| {
                        service.submit_pipeline(PipelineRequest::new(
                            PipelineSpec::roundtrip(),
                            vec![p.clone()],
                        ))
                    });
                    assert_eq!(ticket.wait().unwrap(), p, "roundtrip client {c} req {r}");
                }
            });
        }
    });
    let m = service.shutdown();
    assert_eq!(m.completed, 48);
    assert_eq!(m.failed, 0);
    assert!(
        m.pipeline_cache_entries >= 4,
        "forward+roundtrip (registration) plus the novel spectral spec \
         must be cached ({} entries)",
        m.pipeline_cache_entries
    );
}

#[test]
fn pipeline_submission_validates_eagerly() {
    let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
    // Input-count mismatch against the spec's declared slots.
    assert!(matches!(
        service.submit_pipeline(PipelineRequest::new(
            PipelineSpec::polymul(),
            vec![pseudo(8, 97, 1)],
        )),
        Err(BpNttError::InvalidPipeline { .. })
    ));
    // Wrong length and unreduced coefficients, validated per polynomial
    // against the tenant's params.n/q at submit time.
    assert!(matches!(
        service.submit_pipeline(PipelineRequest::new(
            PipelineSpec::forward_ntt(),
            vec![vec![0; 7]],
        )),
        Err(BpNttError::WrongLength {
            expected: 8,
            actual: 7
        })
    ));
    assert!(matches!(
        service.submit_pipeline(PipelineRequest::new(
            PipelineSpec::forward_ntt(),
            vec![vec![97; 8]],
        )),
        Err(BpNttError::Unreduced { value: 97, .. })
    ));
    // No output slot, no input slots, structural defects.
    assert!(matches!(
        service.submit_pipeline(PipelineRequest::new(
            PipelineSpec::new().input(0).forward(0),
            vec![pseudo(8, 97, 2)],
        )),
        Err(BpNttError::InvalidPipeline { .. })
    ));
    assert!(matches!(
        service.submit_pipeline(PipelineRequest::new(
            PipelineSpec::new().forward(0).output(0),
            vec![],
        )),
        Err(BpNttError::InvalidPipeline { .. })
    ));
    // Slot capacity against the tenant's layout (config8 fits 3 slots of
    // 8 points in 26 usable rows; slot 3 exceeds it).
    assert!(matches!(
        service.submit_pipeline(PipelineRequest::new(
            PipelineSpec::new().input(0).forward(3).output(0),
            vec![pseudo(8, 97, 3)],
        )),
        Err(BpNttError::CapacityExceeded { .. })
    ));
    let m = service.shutdown();
    assert_eq!(m.submitted, 0, "invalid requests never enter the queue");
}

#[test]
fn pipeline_modes_agree_through_the_service() {
    // The same graph under Replay and the two emit modes returns the
    // same polynomials through the service path.
    let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
    let a = pseudo(8, 97, 21);
    let b = pseudo(8, 97, 22);
    let mut outs = Vec::new();
    for mode in ExecMode::ALL {
        let ticket = service
            .submit_pipeline(
                PipelineRequest::new(PipelineSpec::polymul(), vec![a.clone(), b.clone()])
                    .with_mode(mode),
            )
            .unwrap();
        outs.push(ticket.wait().unwrap());
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
    let params = NttParams::new(8, 97).unwrap();
    assert_eq!(outs[0], polymul_schoolbook(&params, &a, &b).unwrap());
}

#[test]
fn backpressure_is_typed_and_counted() {
    let service = NttService::start(
        &config8(),
        ServiceOptions {
            max_queue: 0,
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    for _ in 0..3 {
        assert!(matches!(
            service.submit_forward(pseudo(8, 97, 5)),
            Err(BpNttError::Overloaded {
                depth: 0,
                capacity: 0,
                ..
            })
        ));
    }
    let m = service.shutdown();
    assert_eq!(m.rejected, 3);
    assert_eq!(m.submitted, 0);
}

/// Chaos scenario: mixed-tenant load under injected SRAM transients,
/// full verification, and a scattering of tight deadlines. Invariants:
/// every non-deadline request completes with the reference-exact
/// result (zero corrupted escapes), deadline-expired tickets fail typed
/// with `DeadlineExpired` and never block their callers, and the
/// recovery counters surface in the metrics JSON.
#[test]
fn chaos_mixed_tenants_with_faults_and_tight_deadlines() {
    use bpntt_core::{FaultPlan, VerifyPolicy};
    let params8 = NttParams::new(8, 97).unwrap();
    let params16 = NttParams::new(16, 193).unwrap();
    let service = NttService::start(
        &config8(),
        ServiceOptions {
            shards: 2,
            max_queue: 128,
            coalesce_window: Duration::from_millis(1),
            verify: VerifyPolicy::Full,
            retry_budget: 2,
            fault_plan: Some(FaultPlan::seeded(0xC0FFEE).transient_rate(2e-4)),
            ..ServiceOptions::default()
        },
    )
    .unwrap();
    let t8 = service.default_tenant();
    let t16 = service.add_tenant(&config16()).unwrap();

    // Tight-deadline probes interleaved with the load: zero-deadline
    // requests expire on the dispatcher's first look, typed, and the
    // ticket resolves instead of hanging.
    let mut doomed = Vec::new();
    std::thread::scope(|scope| {
        let service = &service;
        let params8 = &params8;
        let params16 = &params16;
        scope.spawn(move || run_mixed_stress(service, t8, params8, 3, 16));
        scope.spawn(move || run_mixed_stress(service, t16, params16, 3, 16));
        for s in 0..6 {
            doomed.push(submit_with_retry(|| {
                service.submit_pipeline(
                    PipelineRequest::new(PipelineSpec::forward_ntt(), vec![pseudo(8, 97, 900 + s)])
                        .with_tenant(t8)
                        .with_deadline(Duration::ZERO),
                )
            }));
        }
    });
    let mut expired = 0u64;
    for t in doomed {
        // Bounded wait: an expired ticket must resolve, never block.
        match t
            .wait_timeout(Duration::from_secs(30))
            .expect("deadline ticket hung")
        {
            Err(BpNttError::DeadlineExpired { .. }) => expired += 1,
            Ok(out) => assert_eq!(out.len(), 8, "raced the dispatcher and completed"),
            Err(e) => panic!("unexpected error for deadline probe: {e}"),
        }
    }
    let m = service.shutdown();
    assert_eq!(
        m.completed + m.failed,
        m.submitted,
        "every accepted request resolved"
    );
    assert_eq!(
        m.failed, m.deadline_expired,
        "only deadline probes may fail"
    );
    assert_eq!(m.deadline_expired, expired);
    assert!(m.verify_ms > 0.0, "verification ran");
    let json = m.to_json();
    for key in [
        "\"faults_detected\"",
        "\"retries\"",
        "\"quarantined_shards\"",
        "\"fallback_polys\"",
        "\"deadline_expired\"",
        "\"verify_ms\"",
    ] {
        assert!(json.contains(key), "missing {key} in metrics JSON");
    }
}
