//! Cross-crate integration tests (the tests live in `tests/tests/`).

#![forbid(unsafe_code)]
